//! Engine configuration and the paper's five system presets.

use pensieve_model::SimDuration;

/// Which running request to suspend when decode growth outruns the GPU
/// cache (§4.3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuspendPolicy {
    /// Paper's choice: descending arrival time (newest first).
    NewestFirst,
    /// Oldest arrival first (finishes late work last).
    OldestFirst,
    /// The request holding the most KV slots (frees the most space).
    LargestContext,
}

/// Which eviction policy the tiered cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Pensieve's retention-value policy `V = Cost(l)/T` (§4.3.1).
    RetentionValue,
    /// Classic LRU at chunk granularity (Figure 14 baseline).
    Lru,
    /// CachedAttention-style whole-conversation LRU (ablation).
    WholeConversation,
    /// SGLang-style trailing-end LRU (ablation).
    TrailingEnd,
}

/// Complete behavioural configuration of a serving engine.
///
/// One engine implementation covers every system in the paper's
/// evaluation; the presets below flip the relevant switches.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Display name used in experiment output.
    pub name: String,
    /// Keep conversations' KV-tokens across requests (Pensieve) or free
    /// them at request completion (vLLM, TensorRT-LLM).
    pub stateful: bool,
    /// Enable the CPU cache tier. Ignored when `stateful` is false;
    /// `false` gives the "Pensieve (GPU cache)" variant.
    pub cpu_cache: bool,
    /// Mix prefill and generation requests in one kernel invocation
    /// (§4.4.1). When false, each iteration runs them as two separate
    /// invocations (Figure 13's "separate" variant and both baselines).
    pub unified_batching: bool,
    /// Eviction policy for the tiered cache.
    pub policy: PolicyKind,
    /// Compute-time multiplier modelling the runtime (1.0 = PyTorch-style
    /// eager execution; <1.0 = graph-compiled, e.g. TensorRT).
    pub compute_scale: f64,
    /// Fixed per-iteration scheduling/launch overhead.
    pub iteration_overhead: SimDuration,
    /// Maximum total query tokens per batch iteration.
    pub max_batch_tokens: usize,
    /// Maximum requests decoding concurrently.
    pub max_batch_requests: usize,
    /// Eviction chunk size in tokens (paper: 32; ablated in the benches).
    pub chunk_tokens: usize,
    /// Ahead-of-time swap watermark as a free-GPU fraction (paper: 0.25).
    pub swap_watermark: f64,
    /// GPU fraction reserved for running decodes (paper: 0.10).
    pub decode_reserve: f64,
    /// Length of a system prompt shared by *all* conversations whose KV
    /// state is designated reusable (paper §7 footnote 3). Zero disables
    /// sharing; stateless engines ignore it (they recompute it anyway).
    pub shared_prefix_tokens: usize,
    /// Reserve KV slots for the *maximum* decoding length at admission,
    /// as FasterTransformer/ORCA do (§2.2), instead of growing the
    /// allocation with each generated token (vLLM-style paging).
    pub reserve_max_decode: bool,
    /// Victim selection for mid-generation suspension (§4.3.5).
    pub suspend_policy: SuspendPolicy,
    /// Split prefills into chunks of at most this many query tokens per
    /// iteration (Sarathi-style chunked prefill, cited in §7), so long
    /// prompts do not stall running decodes for a whole iteration.
    /// `None` processes each prefill in one invocation (the paper's
    /// systems).
    pub chunked_prefill: Option<usize>,
    /// Capacity of the tier-2 simulated-NVMe cache in tokens. `0` (the
    /// default, and the paper's configuration) disables the tier; CPU
    /// eviction then drops chunks exactly as two-tier Pensieve does.
    /// Ignored when `stateful` or `cpu_cache` is false. See
    /// `docs/STORAGE.md`.
    pub ssd_capacity_tokens: usize,
    /// Capacity of the tier-3 simulated cold object store in tokens.
    /// `0` (the default) disables the tier. Ignored when `stateful` or
    /// `cpu_cache` is false.
    pub cold_capacity_tokens: usize,
}

impl EngineConfig {
    /// Full Pensieve: stateful, two-tier cache, unified batching,
    /// retention-value eviction (the paper's system).
    #[must_use]
    pub fn pensieve() -> Self {
        EngineConfig {
            name: "Pensieve".to_owned(),
            stateful: true,
            cpu_cache: true,
            unified_batching: true,
            policy: PolicyKind::RetentionValue,
            compute_scale: 1.0,
            iteration_overhead: SimDuration::from_micros(300.0),
            max_batch_tokens: 4096,
            max_batch_requests: 256,
            chunk_tokens: 32,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
            shared_prefix_tokens: 0,
            reserve_max_decode: false,
            suspend_policy: SuspendPolicy::NewestFirst,
            chunked_prefill: None,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
        }
    }

    /// Pensieve with the deep storage hierarchy enabled: evicted CPU
    /// chunks demote to a simulated NVMe tier and then to a simulated
    /// cold object store instead of being dropped, and session manifests
    /// persisted to the cold tier let restarted replicas rehydrate
    /// sessions instead of recomputing them (see `docs/STORAGE.md`).
    #[must_use]
    pub fn pensieve_deep_tiers(ssd_tokens: usize, cold_tokens: usize) -> Self {
        EngineConfig {
            name: "Pensieve (deep tiers)".to_owned(),
            ssd_capacity_tokens: ssd_tokens,
            cold_capacity_tokens: cold_tokens,
            ..Self::pensieve()
        }
    }

    /// Pensieve with Sarathi-style chunked prefill: long prompts are fed
    /// to the unified batch in `chunk`-token slices so that concurrent
    /// decodes keep their per-token latency.
    #[must_use]
    pub fn pensieve_chunked_prefill(chunk: usize) -> Self {
        EngineConfig {
            name: format!("Pensieve (chunked prefill {chunk})"),
            chunked_prefill: Some(chunk),
            ..Self::pensieve()
        }
    }

    /// Pensieve with the shared-system-prompt optimization: the first
    /// `tokens` of every conversation are served from a single, pinned,
    /// globally shared KV prefix (cached once instead of per
    /// conversation).
    #[must_use]
    pub fn pensieve_shared_prefix(tokens: usize) -> Self {
        EngineConfig {
            name: format!("Pensieve (shared prefix {tokens})"),
            shared_prefix_tokens: tokens,
            ..Self::pensieve()
        }
    }

    /// Pensieve (GPU cache): evicted tokens are dropped instead of being
    /// swapped to the CPU (§6.1's ablation variant).
    #[must_use]
    pub fn pensieve_gpu_cache() -> Self {
        EngineConfig {
            name: "Pensieve (GPU cache)".to_owned(),
            cpu_cache: false,
            ..Self::pensieve()
        }
    }

    /// Pensieve with separate prefill/generation scheduling (Figure 13).
    #[must_use]
    pub fn pensieve_non_unified() -> Self {
        EngineConfig {
            name: "Pensieve (separate phases)".to_owned(),
            unified_batching: false,
            ..Self::pensieve()
        }
    }

    /// Pensieve with classic LRU eviction (Figure 14).
    #[must_use]
    pub fn pensieve_lru() -> Self {
        EngineConfig {
            name: "Pensieve (LRU)".to_owned(),
            policy: PolicyKind::Lru,
            ..Self::pensieve()
        }
    }

    /// vLLM v0.2.0-style baseline: stateless, paged KV within a request's
    /// lifetime, separate prefill/decode batches, eager PyTorch runtime.
    #[must_use]
    pub fn vllm() -> Self {
        EngineConfig {
            name: "vLLM".to_owned(),
            stateful: false,
            cpu_cache: false,
            unified_batching: false,
            policy: PolicyKind::Lru,
            compute_scale: 1.0,
            iteration_overhead: SimDuration::from_micros(300.0),
            max_batch_tokens: 4096,
            max_batch_requests: 256,
            chunk_tokens: 32,
            swap_watermark: 0.25,
            decode_reserve: 0.10,
            shared_prefix_tokens: 0,
            reserve_max_decode: false,
            suspend_policy: SuspendPolicy::NewestFirst,
            chunked_prefill: None,
            ssd_capacity_tokens: 0,
            cold_capacity_tokens: 0,
        }
    }

    /// ORCA/FasterTransformer-style baseline (§2.2): stateless,
    /// iteration-level batching, but KV slots are reserved for the
    /// maximum decoding length up front — the pre-paging discipline whose
    /// memory waste motivated vLLM.
    #[must_use]
    pub fn orca() -> Self {
        EngineConfig {
            name: "ORCA-style (reserve max)".to_owned(),
            reserve_max_decode: true,
            ..Self::vllm()
        }
    }

    /// TensorRT-LLM-style baseline: stateless like vLLM, but the model is
    /// graph-compiled — fused operators run ~20 % faster and per-iteration
    /// overhead is lower (§6.2 explains TRT-LLM's edge over vLLM this
    /// way).
    #[must_use]
    pub fn tensorrt_llm() -> Self {
        EngineConfig {
            name: "TensorRT-LLM".to_owned(),
            compute_scale: 0.8,
            iteration_overhead: SimDuration::from_micros(120.0),
            ..Self::vllm()
        }
    }

    /// All four systems of Figures 10 and 11, in plot order.
    #[must_use]
    pub fn figure10_systems() -> Vec<EngineConfig> {
        vec![
            Self::pensieve(),
            Self::pensieve_gpu_cache(),
            Self::vllm(),
            Self::tensorrt_llm(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_it_matters() {
        let p = EngineConfig::pensieve();
        assert!(p.stateful && p.cpu_cache && p.unified_batching);
        assert_eq!(p.policy, PolicyKind::RetentionValue);

        let g = EngineConfig::pensieve_gpu_cache();
        assert!(g.stateful && !g.cpu_cache);

        let nu = EngineConfig::pensieve_non_unified();
        assert!(nu.stateful && !nu.unified_batching);

        let v = EngineConfig::vllm();
        assert!(!v.stateful && !v.unified_batching);
        assert_eq!(v.compute_scale, 1.0);

        let t = EngineConfig::tensorrt_llm();
        assert!(!t.stateful);
        assert!(t.compute_scale < v.compute_scale);
        assert!(t.iteration_overhead < v.iteration_overhead);

        assert_eq!(p.ssd_capacity_tokens, 0, "deep tiers off by default");
        let d = EngineConfig::pensieve_deep_tiers(4096, 65536);
        assert!(d.stateful && d.cpu_cache);
        assert_eq!(d.ssd_capacity_tokens, 4096);
        assert_eq!(d.cold_capacity_tokens, 65536);
    }

    #[test]
    fn figure10_lists_four_systems() {
        let sys = EngineConfig::figure10_systems();
        assert_eq!(sys.len(), 4);
        let names: Vec<&str> = sys.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"Pensieve") && names.contains(&"vLLM"));
    }
}
