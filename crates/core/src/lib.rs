//! Pensieve's stateful LLM serving engine and the paper's baselines.
//!
//! Two engines live here:
//!
//! * [`engine::SimServingEngine`] — the full iteration-level serving system
//!   running against simulated device timing. One configurable
//!   implementation covers every system in the paper's evaluation:
//!   Pensieve, Pensieve (GPU cache only), Pensieve without unified
//!   scheduling, vLLM, and TensorRT-LLM (see [`config::EngineConfig`]'s
//!   presets). The scheduler, cache manager, eviction, suspension, and
//!   dropped-token recomputation logic are all real; only `duration_of`
//!   comes from the cost model.
//! * [`functional::FunctionalEngine`] — a scaled-down engine executing
//!   *real* forward passes of the tiny transformer over the paged KV pool,
//!   including actual swap-out to a host-memory stash, swap-in, dropping,
//!   and sub-request recomputation. Its outputs are compared token-for-
//!   token against stateless recomputation in the integration tests.

pub mod backend;
pub mod config;
pub mod engine;
pub mod error;
pub mod functional;
pub mod request;
pub mod workers;

pub use backend::ServingBackend;
pub use config::EngineConfig;
pub use engine::{EngineBuilder, EngineCounters, RecoveryPolicy, SimServingEngine};
pub use error::{PensieveError, WorkerError};
pub use functional::{FunctionalConfig, FunctionalEngine};
pub use request::{Request, RequestBuildError, RequestBuilder, RequestId, Response};
pub use workers::ThreadedTpEngine;
