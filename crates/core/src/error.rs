//! Typed errors for the serving stack.
//!
//! Every fallible layer has its own error enum close to its code
//! ([`pensieve_kvcache::CacheError`], [`pensieve_sim::TransferError`],
//! [`pensieve_sim::ScheduleError`], [`WorkerError`] here); this module
//! adds the worker-fleet error and the top-level [`PensieveError`] that
//! embedding applications can match on without knowing which layer
//! failed.

use std::fmt;

use pensieve_kernels::paged::OutOfBlocks;

/// Error from the threaded tensor-parallel worker fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerError {
    /// A worker's KV pool was exhausted (propagated from the shard).
    OutOfBlocks(OutOfBlocks),
    /// A worker shard's channel disconnected — the thread crashed or was
    /// shut down. `shard` is the index when the send side detected it,
    /// `None` when detected on the shared response channel.
    ShardDisconnected {
        /// Index of the dead shard, if known.
        shard: Option<usize>,
    },
    /// A worker replied out of protocol (a scheduler/worker bug, surfaced
    /// instead of silently mis-summing partials).
    Protocol(&'static str),
}

impl fmt::Display for WorkerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkerError::OutOfBlocks(e) => write!(f, "worker KV pool exhausted: {e}"),
            WorkerError::ShardDisconnected { shard: Some(i) } => {
                write!(f, "worker shard {i} disconnected")
            }
            WorkerError::ShardDisconnected { shard: None } => {
                write!(f, "a worker shard disconnected")
            }
            WorkerError::Protocol(what) => write!(f, "worker protocol violation: {what}"),
        }
    }
}

impl std::error::Error for WorkerError {}

impl From<OutOfBlocks> for WorkerError {
    fn from(e: OutOfBlocks) -> Self {
        WorkerError::OutOfBlocks(e)
    }
}

/// Top-level error uniting every layer's typed failures.
#[derive(Debug, Clone, PartialEq)]
pub enum PensieveError {
    /// KV cache management failed.
    Cache(pensieve_kvcache::CacheError),
    /// A simulated PCIe transfer failed or timed out.
    Transfer(pensieve_sim::TransferError),
    /// An event was scheduled into the simulator's past.
    Schedule(pensieve_sim::ScheduleError),
    /// The tensor-parallel worker fleet failed.
    Worker(WorkerError),
}

impl fmt::Display for PensieveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PensieveError::Cache(e) => write!(f, "cache: {e}"),
            PensieveError::Transfer(e) => write!(f, "transfer: {e}"),
            PensieveError::Schedule(e) => write!(f, "schedule: {e}"),
            PensieveError::Worker(e) => write!(f, "worker: {e}"),
        }
    }
}

impl std::error::Error for PensieveError {}

impl From<pensieve_kvcache::CacheError> for PensieveError {
    fn from(e: pensieve_kvcache::CacheError) -> Self {
        PensieveError::Cache(e)
    }
}

impl From<pensieve_sim::TransferError> for PensieveError {
    fn from(e: pensieve_sim::TransferError) -> Self {
        PensieveError::Transfer(e)
    }
}

impl From<pensieve_sim::ScheduleError> for PensieveError {
    fn from(e: pensieve_sim::ScheduleError) -> Self {
        PensieveError::Schedule(e)
    }
}

impl From<WorkerError> for PensieveError {
    fn from(e: WorkerError) -> Self {
        PensieveError::Worker(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let w: PensieveError = WorkerError::ShardDisconnected { shard: Some(2) }.into();
        assert_eq!(w.to_string(), "worker: worker shard 2 disconnected");
        let c: PensieveError = pensieve_kvcache::CacheError::OutOfGpu { needed: 8, free: 4 }.into();
        assert!(c.to_string().contains("out of GPU KV slots"));
        let p: WorkerError = OutOfBlocks.into();
        assert!(matches!(p, WorkerError::OutOfBlocks(_)));
    }
}
