//! The iteration-level serving engine (paper §4.1–§4.3), simulated timing.
//!
//! One configurable implementation covers every system in the paper's
//! evaluation (see [`EngineConfig`]'s presets). The engine is "clocked" by
//! generation-step completions (§4.2): each iteration
//! performs, in order,
//!
//! 1. **decode slot growth** — every running request appends one KV slot;
//!    on overflow, requests are *suspended* newest-arrival-first (§4.3.5),
//! 2. **ahead-of-time swap-out** when the free watermark is breached
//!    (§4.3.2), with eviction transfers queued behind retrievals (§5),
//! 3. **FCFS admission** of waiting requests under the token budget and
//!    the 10 % decode reserve, committing each one's Figure-5 restore plan
//!    (GPU hits, revalidations, swap-ins, dropped-prefix recomputes),
//! 4. **execution** — one unified invocation mixing prefill and decode
//!    (§4.4.1), or two separate invocations for non-unified configs, with
//!    swap-in transfers overlapped layer-by-layer (§4.3.3),
//! 5. **completion** — finished requests leave the batch; stateful
//!    configs keep their KV-tokens cached, stateless configs free them.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use crossbeam::pool::Pool;
use pensieve_kvcache::{
    CacheConfig, CacheStats, CachedAttentionPolicy, EvictionPolicy, LruPolicy,
    RetentionValuePolicy, SessionId, SessionManifest, TieredKvCache, TrailingEndPolicy,
};
use pensieve_model::{
    BatchShape, CostModel, HardwareSpec, ModelConfig, ProfiledCostTable, SeqShape, SimDuration,
    SimTime,
};
use pensieve_obs::{metrics, DropReason, Recorder as _, RecoveryKind, SharedRecorder, TraceEvent};
use pensieve_sim::{
    Direction, DuplexMode, FaultCounters, FaultInjector, FaultKind, GpuTimer, PcieLink,
    StorageDevice, StorageDeviceSpec,
};

use crate::config::{EngineConfig, PolicyKind, SuspendPolicy};
use crate::request::{Request, Response};

/// Seed of the deterministic synthetic token stream standing in for the
/// deployment-wide system preamble (paper §7 footnote 3) in the timing
/// model. Every replica derives the same stream and therefore the same
/// content-addressed chunk chain, so manifests and migrations re-attach
/// it by id.
const SHARED_PREAMBLE_SEED: u64 = 0x50_45_4e_53; // "PENS"

/// Internal per-request execution state.
#[derive(Debug, Clone)]
struct RunningRequest {
    req: Request,
    /// Output tokens produced so far.
    generated: usize,
    /// Current context length in the KV cache (tokens with slots).
    context_len: usize,
    /// Prefill work to perform in the next invocation, if any.
    prefill: Option<PrefillWork>,
    first_token: Option<SimTime>,
    /// Total query tokens processed in prefill (for reporting).
    prefill_tokens: usize,
    /// History tokens served from cache (for reporting).
    cached_tokens: usize,
    /// KV slots for the whole decode were reserved at admission
    /// (ORCA-style); decode growth is a no-op.
    preallocated: bool,
}

#[derive(Debug, Clone, Copy)]
struct PrefillWork {
    /// Query tokens to process (recomputed history tail + new prompt).
    query_tokens: usize,
    /// Context length after the prefill.
    context_len: usize,
    /// Bytes to swap in from the CPU tier (per GPU shard).
    swap_in_bytes: usize,
    /// Query tokens already processed by earlier chunked iterations.
    done_tokens: usize,
    /// Queueing delay of a swap-in DMA already placed on the link during
    /// fault-aware admission (its retries consumed link time there), so
    /// `execute` must not schedule those bytes again. `None` on the
    /// fault-free path.
    reserved_delay: Option<SimDuration>,
}

/// A waiting-queue entry: a fresh request or a suspended one.
#[derive(Debug, Clone)]
enum WorkItem {
    New(Request),
    Resumed(RunningRequest),
}

impl WorkItem {
    fn arrival(&self) -> SimTime {
        match self {
            WorkItem::New(r) => r.arrival,
            WorkItem::Resumed(r) => r.req.arrival,
        }
    }
}

/// Aggregate engine counters beyond per-request responses.
#[derive(Debug, Clone, Default)]
pub struct EngineCounters {
    /// Batched model invocations executed.
    pub iterations: u64,
    /// Requests suspended mid-generation (§4.3.5).
    pub suspensions: u64,
    /// Total query tokens processed in prefill across all requests.
    pub prefill_tokens: u64,
    /// Total decode steps executed across all requests.
    pub decode_tokens: u64,
    /// History tokens served by the globally shared system-prompt prefix.
    pub shared_prefix_hits: u64,
    /// Accumulated busy time of the GPU.
    pub busy_time: SimDuration,
    /// Swap-in DMA attempts that failed or timed out and were retried
    /// (fault injection only).
    pub swap_in_retries: u64,
    /// Restores whose swap-in retries were exhausted, falling back to
    /// dropping the CPU chunks and recomputing them from raw tokens.
    pub recompute_fallbacks: u64,
    /// Transient GPU slot-allocation failures absorbed by eviction
    /// backpressure.
    pub gpu_alloc_faults: u64,
    /// Injected worker stalls absorbed as longer iterations.
    pub worker_stalls: u64,
    /// CPU-tier chunks lost or corrupted by injected host-memory faults.
    pub chunk_faults: u64,
    /// Deep-tier (SSD/cold) reads that failed, dropping the session's
    /// deep chunks and falling back to recomputation.
    pub cold_read_faults: u64,
}

/// Retry/backoff parameters for recovering from transient swap-in faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryPolicy {
    /// Retries after the first failed swap-in DMA before falling back to
    /// dropped-token recomputation.
    pub max_swap_in_retries: u32,
    /// Backoff before the first retry.
    pub retry_backoff_base: SimDuration,
    /// Multiplier applied to the backoff after every failed retry.
    pub retry_backoff_factor: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_swap_in_retries: 3,
            retry_backoff_base: SimDuration::from_micros(200.0),
            retry_backoff_factor: 2.0,
        }
    }
}

/// The simulated-timing serving engine.
pub struct SimServingEngine {
    cfg: EngineConfig,
    model: ModelConfig,
    gpu: GpuTimer,
    link: PcieLink,
    cache: TieredKvCache,
    now: SimTime,
    wait_queue: VecDeque<WorkItem>,
    running: Vec<RunningRequest>,
    responses: Vec<Response>,
    counters: EngineCounters,
    kv_bytes_per_token_per_gpu: usize,
    pcie_bandwidth: f64,
    faults: Option<FaultInjector>,
    recovery: RecoveryPolicy,
    /// Tier-2 simulated NVMe device serving SSD-tier chunk reads.
    ssd_dev: StorageDevice,
    /// Tier-3 simulated NFS/object-store device serving cold-tier reads.
    cold_dev: StorageDevice,
    /// Consecutive fault-induced ticks that admitted nothing; bounds the
    /// empty-tick retry loop in `iteration`.
    empty_ticks: u32,
    /// Passive trace/metrics sink shared with the cache, link and GPU
    /// timer; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
    /// Persistent worker pool owned by the engine (serial by default).
    /// The timing-model engine does no arithmetic itself, so the handle
    /// exists for ownership — a router or functional layer borrows it
    /// for batched kernels and parallel stepping — and for the
    /// per-iteration pool health metrics sampled below.
    pool: Pool,
    /// Pool busy-time at the previous metrics sample, for the
    /// worker-utilization gauge.
    pool_busy_prev: Duration,
    /// Wall-clock instant of the previous metrics sample.
    pool_wall_prev: Instant,
    /// Content-addressed chain of the globally shared system preamble;
    /// empty when stateless or `shared_prefix_tokens == 0`.
    shared_chain: Vec<pensieve_kvcache::ChunkId>,
    /// Tokens the chain covers (whole chunks of `shared_prefix_tokens`;
    /// a partial trailing chunk is recomputed per conversation).
    shared_tokens: usize,
    /// Explicit references pinning the preamble chain for the engine's
    /// lifetime; given back to the cache on drop.
    shared_handles: Vec<pensieve_kvcache::ChunkHandle>,
}

impl Drop for SimServingEngine {
    fn drop(&mut self) {
        // The engine owns both the cache and the global-preamble handles,
        // so its teardown is the matching release — anything else would
        // trip the handle leak check.
        for h in std::mem::take(&mut self.shared_handles) {
            let _ = self.cache.release(h);
        }
    }
}

/// Builder for [`SimServingEngine`] — the only way to construct one.
///
/// Collapses the former `with_*`/`set_*` injection-setter pairs into one
/// construction path: fault injection, recovery tuning and trace
/// recording are all decided before the engine exists, so no call site
/// can half-configure a live engine.
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    cfg: EngineConfig,
    model: ModelConfig,
    hardware: HardwareSpec,
    faults: Option<FaultInjector>,
    recovery: RecoveryPolicy,
    recorder: Option<SharedRecorder>,
    pool: Option<Pool>,
}

impl EngineBuilder {
    /// Attaches a deterministic fault injector; iterations draw PCIe,
    /// CPU-tier, allocation and worker faults from it and exercise the
    /// corresponding recovery paths.
    #[must_use]
    pub fn fault_injector(mut self, inj: FaultInjector) -> Self {
        self.faults = Some(inj);
        self
    }

    /// Overrides the swap-in retry/backoff parameters.
    #[must_use]
    pub fn recovery_policy(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Attaches a trace/metrics recorder, cloned into the cache, the
    /// PCIe link and the GPU timer so every layer records into one
    /// buffer. Recording is strictly passive: simulated clocks,
    /// schedules and responses are bit-identical with or without it.
    #[must_use]
    pub fn recorder(mut self, recorder: SharedRecorder) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Installs a persistent worker [`Pool`] the engine owns for its
    /// lifetime (default: [`Pool::serial`]). Handles are cheap clones
    /// sharing the same parked workers, so a fleet of replicas may be
    /// built over one pool. Pool width is purely a latency knob:
    /// simulated clocks and served results are bit-identical at every
    /// setting.
    #[must_use]
    pub fn pool(mut self, pool: Pool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// Constructs the engine.
    #[must_use]
    pub fn build(self) -> SimServingEngine {
        let mut engine = SimServingEngine::new(self.cfg, self.model, self.hardware);
        engine.faults = self.faults;
        engine.recovery = self.recovery;
        engine.pool = self.pool.unwrap_or_default();
        if let Some(recorder) = self.recorder {
            engine.attach_recorder(recorder);
        }
        engine
    }
}

impl SimServingEngine {
    /// Starts building an engine for `model` on `hardware` with
    /// behaviour `cfg`. See [`EngineBuilder`] for the optional knobs.
    #[must_use]
    pub fn builder(cfg: EngineConfig, model: ModelConfig, hardware: HardwareSpec) -> EngineBuilder {
        EngineBuilder {
            cfg,
            model,
            hardware,
            faults: None,
            recovery: RecoveryPolicy::default(),
            recorder: None,
            pool: None,
        }
    }

    /// Internal constructor; external call sites go through
    /// [`SimServingEngine::builder`].
    fn new(cfg: EngineConfig, model: ModelConfig, hardware: HardwareSpec) -> Self {
        let cost = CostModel::new(model.clone(), hardware.clone());
        let mut cache_cfg = CacheConfig::from_model(&model, &cost);
        cache_cfg.chunk_tokens = cfg.chunk_tokens;
        cache_cfg.swap_watermark = cfg.swap_watermark;
        cache_cfg.decode_reserve = cfg.decode_reserve;
        if !cfg.cpu_cache || !cfg.stateful {
            cache_cfg.cpu_capacity_tokens = 0;
        } else {
            // Deep tiers hang below the CPU tier; without it (or without
            // statefulness) there is nothing to demote, so they stay at
            // their disabled default of 0.
            cache_cfg.ssd_capacity_tokens = cfg.ssd_capacity_tokens;
            cache_cfg.cold_capacity_tokens = cfg.cold_capacity_tokens;
        }
        let policy: Box<dyn EvictionPolicy> = match cfg.policy {
            PolicyKind::RetentionValue => Box::new(RetentionValuePolicy::new(
                ProfiledCostTable::profile(&cost, cache_cfg.chunk_tokens, 16384),
            )),
            PolicyKind::Lru => Box::new(LruPolicy),
            PolicyKind::WholeConversation => Box::new(CachedAttentionPolicy),
            PolicyKind::TrailingEnd => Box::new(TrailingEndPolicy),
        };
        let gpu = GpuTimer::new(cost)
            .with_compute_scale(cfg.compute_scale)
            .with_iteration_overhead(cfg.iteration_overhead);
        let link = PcieLink::new(hardware.pcie.clone(), DuplexMode::PrioritizeRetrieval);
        let kv_bytes_per_token_per_gpu = model.kv_bytes_per_token_per_gpu(hardware.num_gpus.max(1));
        let pcie_bandwidth = hardware.pcie.bandwidth;
        let mut engine = SimServingEngine {
            cfg,
            model,
            gpu,
            link,
            cache: TieredKvCache::builder(cache_cfg).policy(policy).build(),
            now: SimTime::ZERO,
            wait_queue: VecDeque::new(),
            running: Vec::new(),
            responses: Vec::new(),
            counters: EngineCounters::default(),
            kv_bytes_per_token_per_gpu,
            pcie_bandwidth,
            faults: None,
            recovery: RecoveryPolicy::default(),
            ssd_dev: StorageDevice::new(StorageDeviceSpec::nvme()),
            cold_dev: StorageDevice::new(StorageDeviceSpec::nfs()),
            empty_ticks: 0,
            recorder: None,
            pool: Pool::serial(),
            pool_busy_prev: Duration::ZERO,
            // lint:allow(r2-wall-clock): pool-utilization epoch for the
            // metrics gauge only — real execution time of real threads,
            // never read by scheduling, eviction, or token generation.
            pool_wall_prev: Instant::now(),
            shared_chain: Vec::new(),
            shared_tokens: 0,
            shared_handles: Vec::new(),
        };
        // Register the deployment-wide system preamble as one
        // content-addressed chain and materialize it globally: every
        // conversation attaches to the same physical chunks, and its
        // memory cost is honest — the chain occupies GPU slots for the
        // engine's lifetime.
        if engine.cfg.stateful && engine.cfg.shared_prefix_tokens > 0 {
            let preamble = pensieve_kvcache::synthetic_preamble(
                SHARED_PREAMBLE_SEED,
                engine.cfg.shared_prefix_tokens,
            );
            let chain = engine.cache.register_shared(&preamble, SimTime::ZERO);
            engine.shared_handles = engine
                .cache
                .materialize_global(&chain, SimTime::ZERO)
                // lint:allow(r1-panic): a shared prefix larger than the
                // GPU cache is a configuration bug, not a runtime
                // condition — fail loudly at construction, not
                // mid-serving.
                .expect("shared prefix must fit in the GPU cache");
            engine.shared_tokens = chain.len() * engine.cache.config().chunk_tokens;
            engine.shared_chain = chain;
        }
        engine
    }

    /// Wires a recorder into every layer (cache, PCIe link, GPU timer);
    /// called once from [`EngineBuilder::build`].
    fn attach_recorder(&mut self, recorder: SharedRecorder) {
        let recorder = Some(recorder);
        self.cache.set_recorder(recorder.clone());
        self.link.set_recorder(recorder.clone());
        self.gpu.set_recorder(recorder.clone());
        self.recorder = recorder;
    }

    /// The engine's worker-pool handle (clone it to share the workers).
    #[must_use]
    pub fn pool(&self) -> &Pool {
        &self.pool
    }

    /// Counters of injected faults, if an injector is attached.
    #[must_use]
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref().map(FaultInjector::counters)
    }

    /// True when `conv`'s next admission should first attach the global
    /// preamble chain: the conversation is new to the cache and its
    /// history actually starts with the preamble.
    fn should_attach_shared(&self, conv: SessionId, history: usize) -> bool {
        self.cfg.stateful
            && !self.shared_chain.is_empty()
            && !self.cache.contains(conv)
            && history >= self.shared_tokens
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The model being served.
    #[must_use]
    pub fn model(&self) -> &ModelConfig {
        &self.model
    }

    /// Current simulated time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Cache effectiveness statistics.
    #[must_use]
    pub fn cache_stats(&self) -> &CacheStats {
        self.cache.stats()
    }

    /// Aggregate engine counters.
    #[must_use]
    pub fn counters(&self) -> &EngineCounters {
        &self.counters
    }

    /// GPU KV slots currently in use (resident + lazily-copied tokens).
    #[must_use]
    pub fn gpu_slots_used(&self) -> usize {
        self.cache.gpu_slots_used()
    }

    /// CPU cache tokens currently in use.
    #[must_use]
    pub fn cpu_tokens_used(&self) -> usize {
        self.cache.cpu_used()
    }

    /// Requests currently in the running batch.
    #[must_use]
    pub fn running_requests(&self) -> usize {
        self.running.len()
    }

    /// Requests currently waiting for admission.
    #[must_use]
    pub fn waiting_requests(&self) -> usize {
        self.wait_queue.len()
    }

    /// True if no request is running or waiting.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.running.is_empty() && self.wait_queue.is_empty()
    }

    /// True if at least one completed response is waiting to be drained.
    #[must_use]
    pub fn responses_ready(&self) -> bool {
        !self.responses.is_empty()
    }

    /// Total GPU KV slot capacity in tokens.
    #[must_use]
    pub fn gpu_capacity_tokens(&self) -> usize {
        self.cache.config().gpu_capacity_tokens
    }

    /// KV bytes per cached token (per GPU shard) — what a migration must
    /// move per token of context.
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> usize {
        self.kv_bytes_per_token_per_gpu
    }

    /// History tokens of `session` this engine could serve from its KV
    /// cache right now (GPU hits, in-place revalidations and CPU
    /// swap-ins; dropped chunks need recomputation and do not count).
    /// The globally shared system preamble is excluded — every replica
    /// of a cluster holds it, so it never differentiates placement.
    #[must_use]
    pub fn cached_tokens(&self, session: SessionId) -> usize {
        let plan = self.cache.plan_restore(session);
        (plan.gpu_hit_tokens + plan.revalidate_tokens + plan.swap_in_tokens)
            .saturating_sub(self.cache.global_shared_tokens(session))
    }

    /// Tokens resident (any non-dropped tier) summed *per sharer*: a
    /// shared chunk counts once for every conversation whose chain holds
    /// it. The baseline an unshared cache would need.
    #[must_use]
    pub fn logical_resident_tokens(&self) -> usize {
        self.cache.logical_resident_tokens()
    }

    /// Tokens physically resident: each shared chunk counted once,
    /// regardless of sharer count. `physical / logical` is the cache's
    /// cross-conversation dedup ratio.
    #[must_use]
    pub fn physical_resident_tokens(&self) -> usize {
        self.cache.physical_resident_tokens()
    }

    /// Removes `session`'s KV state for handoff to another engine.
    /// Returns `None` when the session is unknown here or still has
    /// in-flight work (queued or running requests) — migrating state out
    /// from under an active request would corrupt it.
    pub fn export_session(
        &mut self,
        session: SessionId,
    ) -> Option<pensieve_kvcache::SessionExport> {
        let in_flight = self.running.iter().any(|r| r.req.conv == session)
            || self.wait_queue.iter().any(|w| match w {
                WorkItem::New(r) => r.conv == session,
                WorkItem::Resumed(r) => r.req.conv == session,
            });
        if in_flight {
            return None;
        }
        self.cache.export_session(session)
    }

    /// Installs a handed-off session snapshot into this engine's CPU
    /// cache tier (see [`pensieve_kvcache::TieredKvCache::import_session`]).
    /// Returns the tokens admitted; a session already present here (the
    /// cache refuses the import) or a zero-sized CPU tier yields 0 and
    /// the conversation recomputes instead.
    pub fn import_session(&mut self, export: pensieve_kvcache::SessionExport) -> usize {
        self.cache.import_session(export, self.now).unwrap_or(0)
    }

    /// Builds a cold-tier manifest of `session`'s chunk layout — the
    /// shared chain's content-addressed ids followed by private chunks
    /// (see [`pensieve_kvcache::SessionManifest`]) — or `None` when this
    /// engine does not track the session. Read-only — persisting the
    /// manifest to the cold object store is the router's job.
    #[must_use]
    pub fn session_manifest(&self, session: SessionId) -> Option<SessionManifest> {
        if !self.cache.contains(session) {
            return None;
        }
        Some(SessionManifest {
            session,
            chunks: self.cache.manifest_chunks(session),
        })
    }

    /// Sessions whose cache state is eligible for manifest persistence
    /// (all tracked conversations), in ascending id order.
    #[must_use]
    pub fn manifest_sessions(&self) -> Vec<SessionId> {
        self.cache.sessions()
    }

    /// Rebuilds a session from a persisted manifest after this replica
    /// took over for a failed one: shared chain ids this replica still
    /// pools (the global preamble always, fork chains when warm)
    /// re-attach for free, and the rest is re-admitted at the cold tier
    /// (up to capacity; the remainder recomputes) and served as cold
    /// reads on the session's next restore. Returns the tokens recovered
    /// without recomputation; a session already tracked here yields 0
    /// unchanged.
    pub fn rehydrate_session(&mut self, manifest: &SessionManifest) -> usize {
        self.cache
            .rehydrate_session(manifest.session, &manifest.chunks, self.now)
            .unwrap_or(0)
    }

    /// Drains the KV commit log: sessions whose cache-resident *private*
    /// context grew since the last drain, with their new committed token
    /// totals, in `SessionId` order. Shared chunks never appear — they
    /// travel by content-addressed id, not bytes.
    pub fn take_committed_kv(&mut self) -> Vec<(SessionId, usize)> {
        self.cache.take_commits()
    }

    /// Forks `child` from `parent` (agentic tree-of-thought branching):
    /// the parent's context is promoted into shared chunks both
    /// conversations reference, with no KV bytes copied. See
    /// [`pensieve_kvcache::TieredKvCache::fork_session`].
    ///
    /// # Errors
    ///
    /// Returns [`pensieve_kvcache::CacheError::UnknownConversation`] if
    /// `parent` is not cached here or
    /// [`pensieve_kvcache::CacheError::SessionExists`] if `child` is.
    pub fn fork_session(
        &mut self,
        parent: SessionId,
        child: SessionId,
    ) -> Result<usize, pensieve_kvcache::CacheError> {
        self.cache.fork_session(parent, child, self.now)
    }

    /// Fail-stop: the replica dies, its in-memory KV state is
    /// unrecoverable, and every queued or running request is orphaned.
    /// Returns the orphaned requests (queued first, then running, both
    /// in order) so a router can re-route them; partially generated
    /// output is discarded and regenerated from scratch at the new
    /// replica. Session manifests already persisted to the cold object
    /// store survive the replica — the router may use them to rehydrate
    /// orphaned sessions instead of recomputing (see
    /// [`SimServingEngine::rehydrate_session`]). Already-completed
    /// responses remain drainable.
    pub fn fail_stop(&mut self) -> Vec<Request> {
        let mut orphans: Vec<Request> = Vec::new();
        for item in std::mem::take(&mut self.wait_queue) {
            orphans.push(match item {
                WorkItem::New(r) => r,
                WorkItem::Resumed(r) => r.req,
            });
        }
        for r in std::mem::take(&mut self.running) {
            orphans.push(r.req);
        }
        orphans
    }

    /// Enqueues a request. Admission is FCFS in *submission* order;
    /// drivers submit in arrival order, and a request whose arrival lies
    /// in the engine's past (the clock overshot while it was in flight)
    /// is simply admissible immediately.
    pub fn submit(&mut self, req: Request) {
        self.wait_queue.push_back(WorkItem::New(req));
    }

    /// Drains completed responses.
    pub fn drain_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.responses)
    }

    /// Runs iterations until the clock reaches `t` (an iteration in flight
    /// at `t` finishes; the clock may overshoot) or all work completes.
    pub fn run_until(&mut self, t: SimTime) {
        loop {
            if self.now >= t {
                return;
            }
            if self.running.is_empty() {
                // Jump to the next arrival that is due, or to t.
                match self.next_due_arrival() {
                    Some(a) if a <= t => self.now = self.now.max(a),
                    _ => {
                        self.now = t;
                        return;
                    }
                }
            }
            self.iteration();
        }
    }

    /// Runs until the clock reaches `t` (if given), at least one response
    /// is ready to drain, or no more work is due — whichever comes first.
    /// Returns true if a response is ready.
    ///
    /// Closed-loop drivers use this instead of [`SimServingEngine::run_until`]
    /// so that follow-up turns that causally depend on a response can be
    /// injected before the engine simulates past their arrival.
    ///
    /// With `t: None` the engine never advances its clock past the
    /// present: it returns `false` immediately when idle, and also when
    /// its only pending work is a future-dated arrival. A fair polling
    /// loop (the cluster router's) relies on this — busy-advancing one
    /// replica's clock to its next arrival would let it leap past its
    /// siblings.
    pub fn run_until_or_response(&mut self, t: Option<SimTime>) -> bool {
        loop {
            if !self.responses.is_empty() {
                return true;
            }
            if let Some(t) = t {
                if self.now >= t {
                    return false;
                }
            }
            if self.running.is_empty() {
                match self.next_due_arrival() {
                    // Work is already due: seat it without moving the
                    // clock.
                    Some(a) if a <= self.now => {}
                    // A future arrival inside the deadline: jump to it.
                    Some(a) if t.is_some_and(|t| a <= t) => self.now = a,
                    // Nothing due before the deadline (or no deadline):
                    // advance to the deadline if one was given and yield.
                    _ => {
                        if let Some(t) = t {
                            self.now = self.now.max(t);
                        }
                        return false;
                    }
                }
            }
            self.iteration();
        }
    }

    /// Runs until every submitted request has completed.
    pub fn run_until_idle(&mut self) {
        while !self.is_idle() {
            if self.running.is_empty() {
                // Not idle with an empty batch means the wait queue holds
                // at least one item; if that invariant ever breaks,
                // stopping is strictly safer than spinning forever.
                let Some(a) = self.next_due_arrival() else {
                    break;
                };
                self.now = self.now.max(a);
            }
            self.iteration();
        }
    }

    fn next_due_arrival(&self) -> Option<SimTime> {
        self.wait_queue.front().map(WorkItem::arrival)
    }

    /// One scheduler clock tick: grow decodes, swap, admit, execute.
    fn iteration(&mut self) {
        if self.recorder.enabled() {
            // Under injected faults a tick can admit nothing and retry;
            // such ticks repeat the same iteration index (the counter
            // only advances when a batch executes) and have no matching
            // `BatchComposed`/`IterationEnd`.
            self.recorder.record(TraceEvent::IterationStart {
                at: self.now,
                iteration: self.counters.iterations,
                running: self.running.len(),
                waiting: self.wait_queue.len(),
            });
        }
        self.fault_tick();
        self.grow_decode_slots();
        self.ahead_of_time_swap();
        self.admit();
        if self.running.is_empty() {
            // Fault-free admission always seats something when work is
            // due; only an injected fault (allocation failure whose
            // backpressure pass freed nothing yet, or a failed restore
            // commit) can empty a tick. Back off briefly and retry —
            // but boundedly, so an infeasible request (a context larger
            // than the whole GPU KV budget) panics with a diagnosis
            // instead of spinning forever.
            debug_assert!(self.faults.is_some(), "iteration with empty batch");
            self.empty_ticks += 1;
            assert!(
                self.empty_ticks < 10_000,
                "admission livelock: the queue front cannot be seated \
                 (context larger than the GPU KV budget?)"
            );
            self.now += self.recovery.retry_backoff_base;
            return;
        }
        self.empty_ticks = 0;
        self.execute();
        self.complete();
        self.sample_metrics();
    }

    /// Mirrors the engine's counters and gauges into the recorder's
    /// metrics registry and takes one time-series sample, timestamped at
    /// the end of the just-finished iteration. No-op without a recorder.
    fn sample_metrics(&mut self) {
        let Some(rec) = self.recorder.clone() else {
            return;
        };
        let c = &self.counters;
        let gpu_slots = self.cache.gpu_slots_used();
        let cpu_tokens = self.cache.cpu_used();
        let ssd_tokens = self.cache.ssd_used();
        let cold_tokens = self.cache.cold_used();
        let cache_stats = self.cache.stats().clone();
        let running = self.running.len();
        let waiting = self.wait_queue.len();
        // Pool health: tasks, backlog, and what fraction of the parked
        // workers this iteration kept busy (wall-clock, not simulated
        // time — the pool does real work; a serial pool reads 0).
        let stats = self.pool.stats();
        let workers = stats.threads.saturating_sub(1);
        // lint:allow(r2-wall-clock): measures how busy the real worker
        // pool was between metric samples; feeds a gauge, never a result.
        let wall_now = Instant::now();
        let wall = wall_now.duration_since(self.pool_wall_prev);
        let busy = stats.busy.saturating_sub(self.pool_busy_prev);
        let utilization = if workers == 0 || wall.is_zero() {
            0.0
        } else {
            (busy.as_secs_f64() / (wall.as_secs_f64() * workers as f64)).min(1.0)
        };
        self.pool_busy_prev = stats.busy;
        self.pool_wall_prev = wall_now;
        let _ = rec.with_metrics(|m| {
            m.counter_set(metrics::names::ITERATIONS_TOTAL, c.iterations);
            m.counter_set(metrics::names::PREFILL_TOKENS_TOTAL, c.prefill_tokens);
            m.counter_set(metrics::names::DECODE_TOKENS_TOTAL, c.decode_tokens);
            m.counter_set(metrics::names::SUSPENSIONS_TOTAL, c.suspensions);
            m.counter_set(
                metrics::names::SHARED_PREFIX_HIT_TOKENS_TOTAL,
                c.shared_prefix_hits,
            );
            m.counter_set(metrics::names::SWAP_IN_RETRIES_TOTAL, c.swap_in_retries);
            m.counter_set(
                metrics::names::RECOMPUTE_FALLBACKS_TOTAL,
                c.recompute_fallbacks,
            );
            m.counter_set(metrics::names::GPU_ALLOC_FAULTS_TOTAL, c.gpu_alloc_faults);
            m.counter_set(metrics::names::WORKER_STALLS_TOTAL, c.worker_stalls);
            m.counter_set(metrics::names::CHUNK_FAULTS_TOTAL, c.chunk_faults);
            m.counter_set(
                metrics::names::SSD_HIT_TOKENS_TOTAL,
                cache_stats.ssd_hit_tokens,
            );
            m.counter_set(
                metrics::names::COLD_HIT_TOKENS_TOTAL,
                cache_stats.cold_hit_tokens,
            );
            m.counter_set(
                metrics::names::DEMOTED_TOKENS_TOTAL,
                cache_stats.demoted_tokens,
            );
            m.counter_set(
                metrics::names::REHYDRATED_TOKENS_TOTAL,
                cache_stats.rehydrated_tokens,
            );
            m.counter_set(metrics::names::COLD_READ_FAULTS_TOTAL, c.cold_read_faults);
            m.gauge_set(metrics::names::RUNNING_REQUESTS, running as f64);
            m.gauge_set(metrics::names::WAITING_REQUESTS, waiting as f64);
            m.gauge_set(metrics::names::GPU_SLOTS_USED, gpu_slots as f64);
            m.gauge_set(metrics::names::CPU_TOKENS_USED, cpu_tokens as f64);
            m.gauge_set(metrics::names::SSD_TOKENS_USED, ssd_tokens as f64);
            m.gauge_set(metrics::names::COLD_TOKENS_USED, cold_tokens as f64);
            m.counter_set(metrics::names::POOL_TASKS_TOTAL, stats.tasks_total);
            m.gauge_set(metrics::names::POOL_QUEUE_DEPTH, stats.queue_depth as f64);
            m.gauge_set(metrics::names::POOL_WORKER_UTILIZATION, utilization);
            m.sample(self.now);
        });
    }

    /// Draws this tick's CPU-tier faults: loss or corruption of a chunk
    /// with a CPU copy. Lost [`pensieve_kvcache::Tier::Cpu`] chunks become
    /// dropped (recomputed on the owner's next restore); lost lazy copies
    /// revert to plain GPU residency — either way the cache accounting
    /// stays exact and the request-visible recovery path is the existing
    /// Figure-5 restore machinery.
    fn fault_tick(&mut self) {
        let Some(inj) = self.faults.as_mut() else {
            return;
        };
        for kind in [FaultKind::CpuChunkLoss, FaultKind::CpuChunkCorruption] {
            if !inj.roll(kind) {
                continue;
            }
            let listing = self.cache.cpu_resident_chunks();
            if listing.is_empty() {
                continue;
            }
            let (conv, idx, tokens) = listing[inj.pick(listing.len())];
            let applied = match kind {
                FaultKind::CpuChunkLoss => self.cache.mark_chunk_lost(conv, idx),
                _ => self.cache.mark_chunk_corrupt(conv, idx),
            };
            // The listing was taken this tick, so the target is valid.
            debug_assert!(applied.is_ok());
            if applied.is_ok() {
                self.counters.chunk_faults += 1;
                // `ChunkDropped` traces loss of the *CPU-tier copy*: for
                // a lazily-copied chunk the GPU bytes survive and only
                // the backup is gone.
                self.recorder.record(TraceEvent::ChunkDropped {
                    at: self.now,
                    conv: conv.0,
                    chunk: idx,
                    tokens,
                    reason: match kind {
                        FaultKind::CpuChunkLoss => DropReason::HostLoss,
                        _ => DropReason::HostCorruption,
                    },
                });
            }
        }
    }

    /// Appends one KV slot per decoding request, suspending
    /// newest-arrival requests if the GPU cannot hold the growth (§4.3.5).
    fn grow_decode_slots(&mut self) {
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].prefill.is_some() || self.running[i].preallocated {
                // Admitted this tick (prefill appends its own slots), or
                // ORCA-style reservation already holds the slot.
                self.running[i].context_len +=
                    usize::from(self.running[i].preallocated && self.running[i].prefill.is_none());
                i += 1;
                continue;
            }
            let conv = self.running[i].req.conv;
            // An injected allocation fault behaves exactly like an
            // out-of-space allocation: it routes into the eviction /
            // suspension backpressure branch below, whose retry succeeds
            // once the transient condition has been absorbed.
            let alloc_fault = self
                .faults
                .as_mut()
                .is_some_and(|f| f.roll(FaultKind::GpuAllocFailure));
            if alloc_fault {
                self.counters.gpu_alloc_faults += 1;
                self.recorder.record(TraceEvent::FaultRecovery {
                    at: self.now,
                    conv: Some(conv.0),
                    kind: RecoveryKind::GpuAllocFault,
                    tokens: 1,
                });
            }
            let grown = if alloc_fault {
                Err(())
            } else {
                self.cache.append_tokens(conv, 1, self.now).map_err(|_| ())
            };
            match grown {
                Ok(()) => {
                    self.running[i].context_len += 1;
                    i += 1;
                }
                Err(()) => {
                    // Reclaim lazily-copied slots via the eviction pass,
                    // then retry; if that fails, suspend the newest.
                    self.cache.swap_out_until(1, self.now);
                    if self.cache.append_tokens(conv, 1, self.now).is_ok() {
                        self.running[i].context_len += 1;
                        i += 1;
                    } else if !self.suspend_newest(Some(i)) {
                        // Nothing left to suspend; drop the token growth
                        // this tick (the request retries next tick).
                        i += 1;
                    } else if i < self.running.len() && self.running[i].req.conv != conv {
                        // The suspended request was this one; do not
                        // advance (a new request now occupies index i).
                    }
                }
            }
        }
    }

    /// Suspends one running request chosen by the configured policy
    /// (paper default: newest arrival first), optionally protecting
    /// `except`. Returns false if no candidate exists.
    fn suspend_newest(&mut self, except: Option<usize>) -> bool {
        let better = |cand: &RunningRequest, best: &RunningRequest| match self.cfg.suspend_policy {
            SuspendPolicy::NewestFirst => cand.req.arrival > best.req.arrival,
            SuspendPolicy::OldestFirst => cand.req.arrival < best.req.arrival,
            SuspendPolicy::LargestContext => cand.context_len > best.context_len,
        };
        let mut chosen: Option<usize> = None;
        for (j, r) in self.running.iter().enumerate() {
            if Some(j) == except || r.prefill.is_some() {
                continue;
            }
            if chosen.is_none_or(|n| better(r, &self.running[n])) {
                chosen = Some(j);
            }
        }
        // Fall back to suspending `except` itself if it is the only one.
        let victim = chosen.or(except);
        let Some(j) = victim else {
            return false;
        };
        let mut r = self.running.remove(j);
        let conv = r.req.conv;
        let moved_tokens = self.cache.suspend(conv, self.now);
        let bytes = moved_tokens * self.kv_bytes_per_token_per_gpu;
        // The freed slots are only usable once the copy-out completes; we
        // charge the wait by pushing the engine clock (§4.3.5: suspension
        // waits for the swap-out).
        let (_, end) = self.link.schedule(self.now, Direction::DeviceToHost, bytes);
        self.now = self.now.max(end);
        r.prefill = None;
        self.counters.suspensions += 1;
        self.wait_queue.push_front(WorkItem::Resumed(r));
        true
    }

    /// Watermark-triggered eviction; transfers are queued on the link but
    /// do not block compute (they run behind retrievals).
    fn ahead_of_time_swap(&mut self) {
        if !self.cfg.stateful {
            return;
        }
        let ops = self.cache.maybe_swap_out(self.now);
        // One DMA per chunk: small chunks pay the per-transfer setup
        // latency more often (the §4.3.1 rationale for 32-token chunks).
        for op in ops.iter().filter(|o| !o.dropped) {
            self.link.schedule(
                self.now,
                Direction::DeviceToHost,
                op.tokens * self.kv_bytes_per_token_per_gpu,
            );
        }
    }

    /// FCFS admission under the token budget and decode reserve.
    fn admit(&mut self) {
        let reserve = self.cache.config().decode_reserve_tokens();
        loop {
            if self.running.len() >= self.cfg.max_batch_requests {
                return;
            }
            let Some(front) = self.wait_queue.front() else {
                return;
            };
            if front.arrival() > self.now {
                return;
            }
            let batch_tokens = self.current_iteration_query_tokens();
            let has_prefill = self.running.iter().any(|r| r.prefill.is_some());
            // The front was observed non-empty above and nothing in
            // between pops, but the walk stays total regardless.
            let Some(item) = self.wait_queue.front() else {
                return;
            };
            let (conv, query_tokens, new_slots) = self.admission_cost(item);
            // Budget: allow one oversized prefill per iteration when no
            // other prefill was admitted.
            if batch_tokens + query_tokens > self.cfg.max_batch_tokens
                && (has_prefill || batch_tokens > self.running.len())
            {
                return;
            }
            // Space: keep the decode reserve when a batch is running. An
            // injected allocation fault is absorbed the same way as real
            // pressure: force the eviction backpressure pass, then
            // re-check.
            let reserve_needed = if self.running.is_empty() { 0 } else { reserve };
            let alloc_fault = self
                .faults
                .as_mut()
                .is_some_and(|f| f.roll(FaultKind::GpuAllocFailure));
            if alloc_fault {
                self.counters.gpu_alloc_faults += 1;
                self.recorder.record(TraceEvent::FaultRecovery {
                    at: self.now,
                    conv: Some(conv.0),
                    kind: RecoveryKind::GpuAllocFault,
                    tokens: new_slots,
                });
            }
            let mut query_tokens = query_tokens;
            let mut new_slots = new_slots;
            if alloc_fault || self.cache.gpu_free_effective_for(conv) < new_slots + reserve_needed {
                self.cache
                    .swap_out_until_for(new_slots + reserve_needed, Some(conv), self.now);
                // Eviction may have demoted this conversation's own
                // chunks; recompute the admission cost before committing.
                let Some(item) = self.wait_queue.front() else {
                    return;
                };
                let (_, q2, s2) = self.admission_cost(item);
                query_tokens = q2;
                new_slots = s2;
                if self.cache.gpu_free_effective_for(conv) < new_slots + reserve_needed {
                    return;
                }
            }
            // Fault-aware swap-in: place the restore's DMA on the link
            // *before* committing cache state, so a persistently failing
            // transfer can fall back to recomputation without leaving the
            // cache half-restored.
            let mut reserved_delay = None;
            if self.faults.is_some() {
                let swap_in_tokens = self.cache.plan_restore(conv).swap_in_tokens;
                if swap_in_tokens > 0 {
                    match self.swap_in_with_retries(swap_in_tokens) {
                        Ok(delay) => reserved_delay = Some(delay),
                        Err(()) => {
                            // Retries exhausted: drop the CPU chunks so
                            // the restore plan recomputes them from raw
                            // tokens, and re-run the admission check with
                            // the new (swap-in-free) plan. Dropped chunks
                            // cannot fail again, so this converges.
                            let dropped = self.cache.drop_cpu_chunks(conv, self.now);
                            self.counters.recompute_fallbacks += 1;
                            self.recorder.record(TraceEvent::FaultRecovery {
                                at: self.now,
                                conv: Some(conv.0),
                                kind: RecoveryKind::RecomputeFallback,
                                tokens: dropped,
                            });
                            continue;
                        }
                    }
                }
            }
            // Deep-tier reads: SSD/cold-resident history must come back
            // through its device before the prefill can use it. Like
            // swap-ins the reads overlap with compute, so only their
            // completion time past `now` is charged as queueing delay. A
            // failed read drops the deep chunks and re-plans the
            // admission as recomputation.
            {
                let plan = self.cache.plan_restore(conv);
                if plan.ssd_read_tokens + plan.cold_read_tokens > 0 {
                    match self.deep_reads_with_fallback(
                        conv,
                        plan.ssd_read_tokens,
                        plan.cold_read_tokens,
                    ) {
                        Ok(delay) => {
                            reserved_delay =
                                Some(reserved_delay.unwrap_or(SimDuration::ZERO).max(delay));
                        }
                        Err(()) => continue,
                    }
                }
            }
            let Some(item) = self.wait_queue.pop_front() else {
                return;
            };
            if self
                .commit_admission(item, conv, query_tokens, reserved_delay)
                .is_err()
            {
                // The item was re-queued at the front; stop admitting
                // this tick and retry after the next eviction pass.
                return;
            }
        }
    }

    /// Schedules this restore's SSD and cold reads on their devices.
    /// Both reads are issued together and proceed independently; the
    /// returned delay is how far past `now` the later one completes,
    /// which `execute` folds into the iteration's stall exactly like a
    /// swap-in queueing delay.
    ///
    /// # Errors
    ///
    /// `Err(())` when an injected read fault fires: the engine clock is
    /// advanced past the failure-detection point, the session's deep
    /// chunks are dropped, and the caller re-plans the admission as
    /// recomputation (dropped chunks cannot fail again, so this
    /// converges).
    fn deep_reads_with_fallback(
        &mut self,
        conv: SessionId,
        ssd_tokens: usize,
        cold_tokens: usize,
    ) -> Result<SimDuration, ()> {
        let ssd_bytes = ssd_tokens * self.kv_bytes_per_token_per_gpu;
        let cold_bytes = cold_tokens * self.kv_bytes_per_token_per_gpu;
        let ssd_res = self
            .ssd_dev
            .try_read(self.now, ssd_bytes, self.faults.as_mut());
        let cold_res = self
            .cold_dev
            .try_read(self.now, cold_bytes, self.faults.as_mut());
        match (ssd_res, cold_res) {
            (Ok((_, ssd_end)), Ok((_, cold_end))) => {
                Ok(ssd_end.max(cold_end).duration_since(self.now))
            }
            (ssd_res, cold_res) => {
                // A failed read still held its device until the failure
                // was detected; charge that time before recomputing.
                let detected = [
                    ssd_res.map_or_else(|e| e.completes, |(_, end)| end),
                    cold_res.map_or_else(|e| e.completes, |(_, end)| end),
                ]
                .into_iter()
                .fold(self.now, SimTime::max);
                self.now = detected;
                let dropped = self.cache.drop_deep_chunks(conv, self.now);
                self.counters.cold_read_faults += 1;
                self.recorder.record(TraceEvent::FaultRecovery {
                    at: self.now,
                    conv: Some(conv.0),
                    kind: RecoveryKind::ColdReadFallback,
                    tokens: dropped,
                });
                Err(())
            }
        }
    }

    /// Schedules a swap-in DMA under fault injection, retrying failed or
    /// timed-out transfers with bounded exponential backoff. Every failed
    /// attempt consumes real link time and pushes the engine clock past
    /// the failure-detection point plus the backoff. Returns the
    /// queueing delay of the successful transfer relative to the (possibly
    /// advanced) current clock, which `execute` folds into this
    /// iteration's stall.
    ///
    /// # Errors
    ///
    /// `Err(())` when `RecoveryPolicy::max_swap_in_retries` is exhausted;
    /// the caller falls back to dropped-token recomputation.
    fn swap_in_with_retries(&mut self, swap_in_tokens: usize) -> Result<SimDuration, ()> {
        let bytes = swap_in_tokens * self.kv_bytes_per_token_per_gpu;
        let mut backoff = self.recovery.retry_backoff_base;
        for _attempt in 0..=self.recovery.max_swap_in_retries {
            match self.link.try_schedule(
                self.now,
                Direction::HostToDevice,
                bytes,
                self.faults.as_mut(),
            ) {
                Ok((start, _end)) => return Ok(start.duration_since(self.now)),
                Err(e) => {
                    self.counters.swap_in_retries += 1;
                    // The aborted DMA held the link until its failure was
                    // detected; the retry is issued after backoff.
                    self.now = self.now.max(e.completes()) + backoff;
                    backoff = backoff * self.recovery.retry_backoff_factor;
                    self.recorder.record(TraceEvent::FaultRecovery {
                        at: self.now,
                        conv: None,
                        kind: RecoveryKind::SwapInRetry,
                        tokens: swap_in_tokens,
                    });
                }
            }
        }
        Err(())
    }

    /// Query tokens already claimed by this iteration's batch.
    fn current_iteration_query_tokens(&self) -> usize {
        let chunk_cap = self.cfg.chunked_prefill.unwrap_or(usize::MAX);
        self.running
            .iter()
            .map(|r| {
                r.prefill
                    .map_or(1, |p| (p.query_tokens - p.done_tokens).min(chunk_cap))
            })
            .sum()
    }

    /// Computes what admitting `item` costs: query tokens and new GPU
    /// slots.
    fn admission_cost(&self, item: &WorkItem) -> (pensieve_kvcache::SessionId, usize, usize) {
        match item {
            WorkItem::New(req) => {
                // A conversation's tracked tokens include its shared
                // chain; a first admission that will attach the global
                // preamble chain (see `commit_admission`) gets the same
                // credit up front. The chain is globally GPU-resident,
                // so it adds neither query tokens nor new slots.
                let cached = if self.cfg.stateful {
                    self.cache.conversation_tokens(req.conv)
                } else {
                    0
                };
                let attach = if self.should_attach_shared(req.conv, req.history_tokens) {
                    self.shared_tokens
                } else {
                    0
                };
                let plan = self.cache.plan_restore(req.conv);
                // History beyond what the cache tracks (e.g. the final
                // token of the previous turn) is recomputed with the
                // prompt.
                let tail = req.history_tokens.saturating_sub(cached + attach);
                let query = plan.recompute_tokens + tail + req.prompt_tokens;
                let mut slots = plan.new_gpu_slots() + tail + req.prompt_tokens;
                if self.cfg.reserve_max_decode {
                    // ORCA-style: hold slots for the whole decode up front.
                    slots += req.output_tokens;
                }
                (req.conv, query, slots)
            }
            WorkItem::Resumed(r) => {
                let plan = self.cache.plan_restore(r.req.conv);
                let tail = r
                    .context_len
                    .saturating_sub(self.cache.conversation_tokens(r.req.conv));
                let query = (plan.recompute_tokens + tail).max(1);
                let slots = plan.new_gpu_slots() + tail;
                (r.req.conv, query, slots)
            }
        }
    }

    /// Commits an admission's restore plan and moves the item into the
    /// running batch.
    ///
    /// # Errors
    ///
    /// If the restore cannot be committed (the space the admission check
    /// saw has vanished — possible only under injected faults that demote
    /// chunks between check and commit), the item is pushed back to the
    /// queue front untouched and the error returned; `commit_restore`
    /// itself is atomic, so no cache state is left half-restored.
    fn commit_admission(
        &mut self,
        item: WorkItem,
        conv: pensieve_kvcache::SessionId,
        query_tokens: usize,
        reserved_delay: Option<SimDuration>,
    ) -> Result<(), pensieve_kvcache::CacheError> {
        // A conversation new to the cache whose history begins with the
        // global preamble attaches the shared chain before its restore is
        // committed, so the chain's chunks restore as shared hits instead
        // of being recomputed into private slots.
        if let WorkItem::New(req) = &item {
            if self.should_attach_shared(req.conv, req.history_tokens) {
                let chain = self.shared_chain.clone();
                // Cannot fail: the chain was validated at construction
                // and the conversation is untracked; if it somehow does,
                // the request simply recomputes its preamble privately.
                let _ = self.cache.attach_shared(req.conv, &chain, self.now);
            }
        }
        let plan = match self.cache.commit_restore(conv, self.now) {
            Ok(plan) => plan,
            Err(e) => {
                self.wait_queue.push_front(item);
                return Err(e);
            }
        };
        let swap_in_bytes = plan.swap_in_tokens * self.kv_bytes_per_token_per_gpu;
        match item {
            WorkItem::New(req) => {
                let shared = plan.shared_hit_tokens;
                self.counters.shared_prefix_hits += shared as u64;
                // Shared-chain hits are already inside the plan's
                // per-tier counts, so the tail is history minus the plan.
                let cached_before = plan.gpu_hit_tokens
                    + plan.revalidate_tokens
                    + plan.swap_in_tokens
                    + plan.deep_read_tokens()
                    + plan.recompute_tokens;
                let tail = req.history_tokens.saturating_sub(cached_before);
                let reserved = if self.cfg.reserve_max_decode {
                    req.output_tokens
                } else {
                    0
                };
                if let Err(e) = self.cache.append_tokens(
                    req.conv,
                    tail + req.prompt_tokens + reserved,
                    self.now,
                ) {
                    // admit() verified effective free space, but under
                    // injected faults it can vanish before the commit.
                    // The committed restore stays consistent — the
                    // re-queued item sees those chunks as GPU hits on the
                    // next attempt.
                    self.wait_queue.push_front(WorkItem::New(req));
                    return Err(e);
                }
                if self.recorder.enabled() {
                    self.recorder.record(TraceEvent::Admitted {
                        at: self.now,
                        iteration: self.counters.iterations,
                        request: req.id.0,
                        conv: conv.0,
                        resumed: false,
                        prompt_tokens: req.prompt_tokens,
                        tail_tokens: tail,
                        shared_tokens: shared,
                        gpu_hit_tokens: plan.gpu_hit_tokens,
                        revalidate_tokens: plan.revalidate_tokens,
                        swap_in_tokens: plan.swap_in_tokens,
                        recompute_tokens: plan.recompute_tokens,
                    });
                }
                let context_len = req.history_tokens + req.prompt_tokens;
                self.running.push(RunningRequest {
                    prefill: Some(PrefillWork {
                        query_tokens,
                        context_len,
                        swap_in_bytes,
                        done_tokens: 0,
                        reserved_delay,
                    }),
                    generated: 0,
                    context_len,
                    first_token: None,
                    prefill_tokens: query_tokens,
                    cached_tokens: plan.gpu_hit_tokens
                        + plan.revalidate_tokens
                        + plan.swap_in_tokens
                        + plan.deep_read_tokens(),
                    preallocated: self.cfg.reserve_max_decode,
                    req,
                });
            }
            WorkItem::Resumed(mut r) => {
                let shared = plan.shared_hit_tokens;
                let cached_now = self.cache.conversation_tokens(r.req.conv);
                let tail = r.context_len.saturating_sub(cached_now);
                if tail > 0 {
                    if let Err(e) = self.cache.append_tokens(r.req.conv, tail, self.now) {
                        // Same recovery as the New arm: re-queue and let
                        // the next admission pass retry against the
                        // committed (consistent) restore state.
                        self.wait_queue.push_front(WorkItem::Resumed(r));
                        return Err(e);
                    }
                }
                if self.recorder.enabled() {
                    self.recorder.record(TraceEvent::Admitted {
                        at: self.now,
                        iteration: self.counters.iterations,
                        request: r.req.id.0,
                        conv: conv.0,
                        resumed: true,
                        prompt_tokens: 0,
                        tail_tokens: tail,
                        shared_tokens: shared,
                        gpu_hit_tokens: plan.gpu_hit_tokens,
                        revalidate_tokens: plan.revalidate_tokens,
                        swap_in_tokens: plan.swap_in_tokens,
                        recompute_tokens: plan.recompute_tokens,
                    });
                }
                r.prefill = Some(PrefillWork {
                    query_tokens,
                    context_len: r.context_len,
                    swap_in_bytes,
                    done_tokens: 0,
                    reserved_delay,
                });
                self.running.push(r);
            }
        }
        Ok(())
    }

    /// Executes the iteration's model invocation(s) and advances the clock.
    fn execute(&mut self) {
        let chunk_cap = self.cfg.chunked_prefill.unwrap_or(usize::MAX);
        let mut prefill_shapes = Vec::new();
        let mut decode_shapes = Vec::new();
        // Bytes still needing a link slot vs all bytes overlapping with
        // compute: fault-aware admission already scheduled its DMA (the
        // reserved delay), but those transfers still pipeline with the
        // layer-by-layer execution (§4.3.3).
        let mut swap_in_bytes = 0usize;
        let mut overlap_bytes = 0usize;
        let mut reserved_delay = SimDuration::ZERO;
        for r in &mut self.running {
            match r.prefill.as_mut() {
                Some(w) => {
                    // Chunked prefill: feed at most `chunk_cap` query
                    // tokens per iteration; the chunk attends to the
                    // context up to its own end.
                    let remaining = w.query_tokens - w.done_tokens;
                    let slice = remaining.min(chunk_cap);
                    let ctx_end = w.context_len - (remaining - slice);
                    prefill_shapes.push(SeqShape {
                        query_len: slice,
                        context_len: ctx_end,
                    });
                    if w.done_tokens == 0 {
                        overlap_bytes += w.swap_in_bytes;
                        match w.reserved_delay.take() {
                            Some(d) => reserved_delay = reserved_delay.max(d),
                            None => swap_in_bytes += w.swap_in_bytes,
                        }
                    }
                    w.done_tokens += slice;
                }
                None => decode_shapes.push(SeqShape::decode(r.context_len)),
            }
        }
        let prefill_query_tokens: usize = prefill_shapes.iter().map(|s| s.query_len).sum();
        let batch_query_tokens = prefill_query_tokens + decode_shapes.len();
        if self.recorder.enabled() {
            self.recorder.record(TraceEvent::BatchComposed {
                at: self.now,
                iteration: self.counters.iterations,
                prefill_seqs: prefill_shapes.len(),
                decode_seqs: decode_shapes.len(),
                prefill_tokens: prefill_query_tokens,
                decode_tokens: decode_shapes.len(),
            });
        }
        // Swap-ins contend on the link; queueing delay precedes compute.
        let queue_delay = if swap_in_bytes > 0 {
            let (start, _) = self
                .link
                .schedule(self.now, Direction::HostToDevice, swap_in_bytes);
            start.duration_since(self.now)
        } else {
            SimDuration::ZERO
        };
        let queue_delay = queue_delay.max(reserved_delay);
        let duration = if self.cfg.unified_batching {
            let mut all = prefill_shapes;
            all.extend_from_slice(&decode_shapes);
            self.gpu.batch_time_with_swap_in_at(
                &BatchShape::new(all),
                overlap_bytes,
                self.pcie_bandwidth,
                self.now,
            )
        } else {
            let mut d = SimDuration::ZERO;
            if !prefill_shapes.is_empty() {
                d += self.gpu.batch_time_with_swap_in_at(
                    &BatchShape::new(prefill_shapes),
                    overlap_bytes,
                    self.pcie_bandwidth,
                    self.now,
                );
            }
            if !decode_shapes.is_empty() {
                d += self.gpu.batch_time(&BatchShape::new(decode_shapes));
            }
            d
        };
        // An injected worker stall completes the iteration late; the
        // scheduler sees it purely as a longer step.
        let mut stall = SimDuration::ZERO;
        if let Some(f) = self.faults.as_mut() {
            if f.roll(FaultKind::WorkerStall) {
                self.counters.worker_stalls += 1;
                stall = f.config().stall_duration;
                self.recorder.record(TraceEvent::FaultRecovery {
                    at: self.now,
                    conv: None,
                    kind: RecoveryKind::WorkerStall,
                    tokens: 0,
                });
            }
        }
        let iteration = self.counters.iterations;
        self.counters.iterations += 1;
        self.counters.busy_time += duration + queue_delay + stall;
        self.now += queue_delay + duration + stall;
        if let Some(rec) = self.recorder.clone() {
            rec.record(TraceEvent::IterationEnd {
                at: self.now,
                iteration,
                queue_delay,
                compute: duration,
                stall,
            });
            let total = queue_delay + duration + stall;
            let _ = rec.with_metrics(|m| {
                m.observe(
                    metrics::names::ITERATION_SECONDS,
                    metrics::ITERATION_SECONDS_BUCKETS,
                    total.as_secs(),
                );
                m.observe(
                    metrics::names::BATCH_QUERY_TOKENS,
                    metrics::BATCH_QUERY_TOKENS_BUCKETS,
                    batch_query_tokens as f64,
                );
            });
        }
    }

    /// Emits tokens, records completions, releases finished requests.
    fn complete(&mut self) {
        let now = self.now;
        let mut finished = Vec::new();
        for r in &mut self.running {
            match r.prefill {
                Some(w) if w.done_tokens < w.query_tokens => {
                    // Mid-chunked-prefill: no token emitted yet.
                    continue;
                }
                Some(w) => {
                    self.counters.prefill_tokens += w.query_tokens as u64;
                    r.prefill = None;
                }
                None => {
                    self.counters.decode_tokens += 1;
                }
            }
            r.generated += 1;
            if r.first_token.is_none() {
                r.first_token = Some(now);
            }
        }
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].generated >= self.running[i].req.output_tokens.max(1) {
                finished.push(self.running.remove(i));
            } else {
                i += 1;
            }
        }
        for r in finished {
            let conv = r.req.conv;
            if self.cfg.stateful {
                self.cache.unpin(conv);
                self.cache.touch(conv, now);
            } else {
                self.cache.remove_conversation(conv);
            }
            let first_token = r.first_token.unwrap_or(now);
            if let Some(rec) = self.recorder.clone() {
                rec.record(TraceEvent::RequestCompleted {
                    at: now,
                    request: r.req.id.0,
                    conv: conv.0,
                    arrival: r.req.arrival,
                    first_token,
                    output_tokens: r.generated,
                    prefill_tokens: r.prefill_tokens,
                    cached_tokens: r.cached_tokens,
                });
                let _ = rec.with_metrics(|m| {
                    m.counter_add(metrics::names::REQUESTS_COMPLETED_TOTAL, 1);
                    m.observe(
                        metrics::names::TTFT_SECONDS,
                        metrics::TTFT_SECONDS_BUCKETS,
                        first_token
                            .saturating_duration_since(r.req.arrival)
                            .as_secs(),
                    );
                });
            }
            self.responses.push(Response {
                id: r.req.id,
                conv,
                arrival: r.req.arrival,
                first_token,
                finish: now,
                output_tokens: r.generated,
                prefill_tokens: r.prefill_tokens,
                cached_history_tokens: r.cached_tokens,
            });
        }
    }
}

impl crate::backend::ServingBackend for SimServingEngine {
    fn submit(&mut self, req: Request) {
        SimServingEngine::submit(self, req);
    }

    fn poll(&mut self, deadline: Option<SimTime>) -> bool {
        self.run_until_or_response(deadline)
    }

    fn responses_ready(&self) -> bool {
        SimServingEngine::responses_ready(self)
    }

    fn drain_responses(&mut self) -> Vec<Response> {
        SimServingEngine::drain_responses(self)
    }

    fn now(&self) -> SimTime {
        SimServingEngine::now(self)
    }

    fn run_until(&mut self, t: SimTime) {
        SimServingEngine::run_until(self, t);
    }

    fn is_idle(&self) -> bool {
        SimServingEngine::is_idle(self)
    }

    fn running_requests(&self) -> usize {
        SimServingEngine::running_requests(self)
    }

    fn waiting_requests(&self) -> usize {
        SimServingEngine::waiting_requests(self)
    }

    fn gpu_slots_used(&self) -> usize {
        SimServingEngine::gpu_slots_used(self)
    }

    fn gpu_capacity_tokens(&self) -> usize {
        SimServingEngine::gpu_capacity_tokens(self)
    }

    fn cpu_tokens_used(&self) -> usize {
        SimServingEngine::cpu_tokens_used(self)
    }

    fn kv_bytes_per_token(&self) -> usize {
        SimServingEngine::kv_bytes_per_token(self)
    }

    fn cached_tokens(&self, session: SessionId) -> usize {
        SimServingEngine::cached_tokens(self, session)
    }

    fn cache_stats(&self) -> CacheStats {
        self.cache.stats().clone()
    }

    fn export_session(&mut self, session: SessionId) -> Option<pensieve_kvcache::SessionExport> {
        SimServingEngine::export_session(self, session)
    }

    fn import_session(&mut self, export: pensieve_kvcache::SessionExport) -> usize {
        SimServingEngine::import_session(self, export)
    }

    fn fail_stop(&mut self) -> Vec<Request> {
        SimServingEngine::fail_stop(self)
    }

    fn take_committed_kv(&mut self) -> Vec<(SessionId, usize)> {
        SimServingEngine::take_committed_kv(self)
    }

    fn manifest_sessions(&self) -> Vec<SessionId> {
        SimServingEngine::manifest_sessions(self)
    }

    fn session_manifest(&self, session: SessionId) -> Option<SessionManifest> {
        SimServingEngine::session_manifest(self, session)
    }

    fn rehydrate_session(&mut self, manifest: &SessionManifest) -> usize {
        SimServingEngine::rehydrate_session(self, manifest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::RequestId;
    use pensieve_kvcache::SessionId;

    fn small_hw() -> HardwareSpec {
        HardwareSpec::azure_nc_a100(1)
    }

    /// Parallel replica stepping hands whole engines to pool workers;
    /// this pins the `Send` bound the router's `for_each_mut` relies on.
    #[test]
    fn engine_is_send() {
        fn assert_send<T: Send>() {}
        assert_send::<SimServingEngine>();
    }

    fn req(id: u64, conv: u64, at: f64, prompt: usize, out: usize, hist: usize) -> Request {
        Request::builder()
            .id(RequestId(id))
            .session(SessionId(conv))
            .arrival(SimTime::from_secs(at))
            .prompt_tokens(prompt)
            .output_tokens(out)
            .history_tokens(hist)
            .build()
            .unwrap()
    }

    fn engine(cfg: EngineConfig) -> SimServingEngine {
        SimServingEngine::builder(cfg, ModelConfig::opt_13b(), small_hw()).build()
    }

    #[test]
    fn single_request_completes() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 100, 20, 0));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 1);
        let r = &rs[0];
        assert_eq!(r.output_tokens, 20);
        assert_eq!(r.prefill_tokens, 100);
        assert!(r.finish > r.first_token);
        assert!(r.first_token > r.arrival);
        // 100-token prefill + 19 decode steps of a 13B model: tens of ms
        // to a few seconds.
        assert!(r.latency().as_secs() > 0.05 && r.latency().as_secs() < 10.0);
    }

    #[test]
    fn stateful_second_turn_prefills_only_the_prompt() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 100, 50, 0));
        e.run_until_idle();
        let t1 = e.drain_responses().remove(0);
        // Next turn: history = 100 + 50.
        let mut r2 = req(2, 1, t1.finish.as_secs() + 5.0, 40, 50, 150);
        r2.arrival = t1.finish + SimDuration::from_secs(5.0);
        e.submit(r2);
        e.run_until_idle();
        let t2 = e.drain_responses().remove(0);
        // Cached: 149 tokens (all but the last generated token).
        assert_eq!(t2.cached_history_tokens, 149);
        assert_eq!(t2.prefill_tokens, 41, "tail token + new prompt");
    }

    #[test]
    fn stateless_second_turn_recomputes_everything() {
        let mut e = engine(EngineConfig::vllm());
        e.submit(req(1, 1, 0.0, 100, 50, 0));
        e.run_until_idle();
        let t1 = e.drain_responses().remove(0);
        let mut r2 = req(2, 1, 0.0, 40, 50, 150);
        r2.arrival = t1.finish + SimDuration::from_secs(5.0);
        e.submit(r2);
        e.run_until_idle();
        let t2 = e.drain_responses().remove(0);
        assert_eq!(t2.cached_history_tokens, 0);
        assert_eq!(t2.prefill_tokens, 190, "history + prompt recomputed");
    }

    #[test]
    fn stateful_turn_is_faster_than_stateless() {
        let run = |cfg: EngineConfig| {
            let mut e = engine(cfg);
            e.submit(req(1, 1, 0.0, 50, 100, 0));
            e.run_until_idle();
            let t1 = e.drain_responses().remove(0);
            // Long history follow-up.
            let mut r2 = req(2, 1, 0.0, 50, 100, 4000);
            r2.arrival = t1.finish + SimDuration::from_secs(1.0);
            // Fake a long first turn by setting history directly: use a
            // separate long turn first.
            let mut e = engine_for(r2.clone());
            e.run_until_idle();
            let resp = e.drain_responses();
            resp.last().unwrap().latency()
        };
        fn engine_for(second: Request) -> SimServingEngine {
            // Build history with one long turn, then submit the follow-up.
            let mut e = SimServingEngine::builder(
                EngineConfig::pensieve(),
                ModelConfig::opt_13b(),
                HardwareSpec::azure_nc_a100(1),
            )
            .build();
            e.submit(
                Request::builder()
                    .id(RequestId(1))
                    .session(second.conv)
                    .prompt_tokens(3900)
                    .output_tokens(100)
                    .build()
                    .unwrap(),
            );
            e.run_until_idle();
            let t1 = e.drain_responses().remove(0);
            let mut s = second;
            s.arrival = t1.finish + SimDuration::from_secs(1.0);
            e.submit(s);
            e
        }
        let _ = run; // The helper above is the actual comparison driver.
                     // Direct comparison: same two-turn trace on both engines.
        let metrics_of = |cfg: EngineConfig| {
            let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), small_hw()).build();
            e.submit(req(1, 1, 0.0, 3900, 100, 0));
            e.run_until_idle();
            let t1 = e.drain_responses().remove(0);
            let mut r2 = req(2, 1, 0.0, 50, 100, 4000);
            r2.arrival = t1.finish + SimDuration::from_secs(1.0);
            e.submit(r2);
            e.run_until_idle();
            let r = e.drain_responses().remove(0);
            (r.ttft(), r.latency())
        };
        let (stateful_ttft, stateful_lat) = metrics_of(EngineConfig::pensieve());
        let (stateless_ttft, stateless_lat) = metrics_of(EngineConfig::vllm());
        // Skipping the 4000-token history prefill slashes time-to-first-
        // token and improves end-to-end latency (decode time dominates the
        // rest).
        assert!(
            stateful_ttft.as_secs() < 0.3 * stateless_ttft.as_secs(),
            "stateful ttft {stateful_ttft} vs stateless {stateless_ttft}"
        );
        assert!(stateful_lat < stateless_lat);
    }

    #[test]
    fn unified_batches_mix_prefill_and_decode() {
        let mut e = engine(EngineConfig::pensieve());
        // First request decodes for a long time; second arrives mid-way.
        e.submit(req(1, 1, 0.0, 200, 300, 0));
        e.submit(req(2, 2, 0.5, 200, 10, 0));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 2);
        // Request 2 must finish long before request 1 (iteration-level
        // batching admitted it mid-decode).
        let r1 = rs.iter().find(|r| r.id == RequestId(1)).unwrap();
        let r2 = rs.iter().find(|r| r.id == RequestId(2)).unwrap();
        assert!(r2.finish < r1.finish);
    }

    #[test]
    fn tensorrt_is_faster_than_vllm() {
        let latency_of = |cfg: EngineConfig| {
            let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), small_hw()).build();
            e.submit(req(1, 1, 0.0, 500, 100, 0));
            e.run_until_idle();
            e.drain_responses().remove(0).latency()
        };
        let v = latency_of(EngineConfig::vllm());
        let t = latency_of(EngineConfig::tensorrt_llm());
        assert!(t < v, "TRT {t} vs vLLM {v}");
    }

    #[test]
    fn fcfs_admission_order() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 50, 5, 0));
        e.submit(req(2, 2, 0.0, 50, 5, 0));
        e.submit(req(3, 3, 0.0, 50, 5, 0));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 3);
        // All three fit one batch: same finish ordering as submission.
        assert!(rs[0].id <= rs[1].id && rs[1].id <= rs[2].id);
    }

    #[test]
    fn run_until_respects_time_and_arrivals() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 5.0, 50, 5, 0));
        e.run_until(SimTime::from_secs(2.0));
        assert_eq!(e.now(), SimTime::from_secs(2.0));
        assert!(e.drain_responses().is_empty());
        e.run_until(SimTime::from_secs(100.0));
        assert_eq!(e.drain_responses().len(), 1);
    }

    /// §4.3.5: when decode growth outruns the GPU cache, the newest
    /// request is suspended, swapped out, and later resumed — and every
    /// request still completes with the right token count.
    #[test]
    fn decode_overflow_suspends_and_resumes() {
        let mut hw = small_hw();
        // Shrink the KV budget to ~1100 OPT-13B tokens so two long decodes
        // cannot coexist.
        hw.gpu_kv_budget_bytes = 1100 * ModelConfig::opt_13b().kv_bytes_per_token();
        hw.cpu_cache_bytes_per_gpu = 1 << 30;
        let mut e =
            SimServingEngine::builder(EngineConfig::pensieve(), ModelConfig::opt_13b(), hw).build();
        e.submit(req(1, 1, 0.0, 100, 500, 0));
        e.submit(req(2, 2, 0.1, 100, 500, 0));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.output_tokens, 500, "request {:?}", r.id);
        }
        assert!(
            e.counters().suspensions > 0,
            "expected at least one suspension under this budget"
        );
        // The earlier-arrived request finishes first (newest suspended).
        let r1 = rs.iter().find(|r| r.id == RequestId(1)).unwrap();
        let r2 = rs.iter().find(|r| r.id == RequestId(2)).unwrap();
        assert!(r1.finish <= r2.finish);
    }

    /// §7 footnote 3: a globally shared system prompt is prefilled once
    /// and then served as cached history to every conversation.
    #[test]
    fn shared_prefix_serves_all_conversations() {
        let shared = 512usize;
        let mut cfg = EngineConfig::pensieve_shared_prefix(shared);
        cfg.name = "shared".to_owned();
        let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), small_hw()).build();
        // Two fresh conversations, each with the system prompt as history.
        e.submit(req(1, 1, 0.0, 40, 10, shared));
        e.submit(req(2, 2, 0.1, 40, 10, shared));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(
                r.prefill_tokens, 40,
                "only the prompt is prefilled; the system prompt is shared"
            );
            assert_eq!(r.cached_history_tokens, shared);
        }
        assert_eq!(e.counters().shared_prefix_hits, 2 * shared as u64);

        // Without sharing, each conversation prefills the prompt fresh.
        let mut e =
            SimServingEngine::builder(EngineConfig::pensieve(), ModelConfig::opt_13b(), small_hw())
                .build();
        e.submit(req(1, 1, 0.0, 40, 10, shared));
        e.run_until_idle();
        let r = e.drain_responses().remove(0);
        assert_eq!(r.prefill_tokens, shared + 40);
        assert_eq!(r.cached_history_tokens, 0);
    }

    /// The shared prefix also accelerates *later* turns: it never ages
    /// out, even when the conversation's own context was dropped.
    #[test]
    fn shared_prefix_survives_conversation_eviction() {
        let shared = 256usize;
        let mut hw = small_hw();
        // Tiny GPU budget: the conversation's own history gets dropped
        // (no CPU tier), but the pinned shared prefix survives.
        hw.gpu_kv_budget_bytes = 2048 * ModelConfig::opt_13b().kv_bytes_per_token();
        let mut cfg = EngineConfig::pensieve_shared_prefix(shared);
        cfg.cpu_cache = false;
        let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), hw).build();
        e.submit(req(1, 1, 0.0, 400, 50, shared));
        e.run_until_idle();
        let t1 = e.drain_responses().remove(0);
        // Another conversation floods the small cache.
        let mut r2 = req(2, 2, 0.0, 1500, 20, shared);
        r2.arrival = t1.finish + SimDuration::from_secs(1.0);
        e.submit(r2);
        e.run_until_idle();
        e.drain_responses();
        // Conversation 1 returns: its own history may be gone, but the
        // shared prefix still counts as cached.
        let mut r3 = req(3, 1, 0.0, 30, 10, shared + 450);
        r3.arrival = e.now() + SimDuration::from_secs(1.0);
        e.submit(r3);
        e.run_until_idle();
        let t3 = e.drain_responses().remove(0);
        assert!(t3.cached_history_tokens >= shared);
        assert_eq!(
            t3.prefill_tokens + t3.cached_history_tokens,
            shared + 450 + 30
        );
    }

    /// Every `ChunkHandle` the engine acquires for the global preamble
    /// chain is released on drop: the process-wide leak counter stays at
    /// zero after an engine that materialized (and served) the shared
    /// chain is torn down.
    #[test]
    fn engine_teardown_releases_all_chunk_handles() {
        let shared = 512usize;
        {
            let mut e = SimServingEngine::builder(
                EngineConfig::pensieve_shared_prefix(shared),
                ModelConfig::opt_13b(),
                small_hw(),
            )
            .build();
            e.submit(req(1, 1, 0.0, 40, 10, shared));
            e.run_until_idle();
            assert_eq!(e.drain_responses().len(), 1);
        } // engine drops here, releasing its preamble handles
        assert_eq!(
            pensieve_kvcache::leaked_chunk_handles(),
            0,
            "engine drop must release every global-preamble ChunkHandle"
        );
    }

    /// ORCA-style max-length reservation admits fewer concurrent
    /// requests than paged growth, but requests still complete correctly.
    #[test]
    fn orca_reservation_limits_concurrency() {
        let mut hw = small_hw();
        // Budget for ~1500 tokens: two 100+500 requests cannot coexist
        // under max-reservation, but can under paged growth.
        hw.gpu_kv_budget_bytes = 1500 * ModelConfig::opt_13b().kv_bytes_per_token();
        hw.cpu_cache_bytes_per_gpu = 1 << 30;
        let run = |cfg: EngineConfig| {
            let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), hw.clone()).build();
            e.submit(req(1, 1, 0.0, 100, 700, 0));
            e.submit(req(2, 2, 0.1, 100, 700, 0));
            e.run_until_idle();
            let rs = e.drain_responses();
            assert_eq!(rs.len(), 2);
            for r in &rs {
                assert_eq!(r.output_tokens, 700);
            }
            // Overlap: does request 2 start before request 1 finishes?
            let r1 = rs.iter().find(|r| r.id == RequestId(1)).unwrap();
            let r2 = rs.iter().find(|r| r.id == RequestId(2)).unwrap();
            (r2.first_token < r1.finish, r2.finish)
        };
        let (orca_overlaps, orca_finish) = run(EngineConfig::orca());
        let (vllm_overlaps, vllm_finish) = run(EngineConfig::vllm());
        assert!(
            !orca_overlaps,
            "max-reservation cannot fit both requests at once"
        );
        assert!(vllm_overlaps, "paged growth batches both");
        assert!(vllm_finish < orca_finish, "paging finishes sooner");
    }

    /// Degenerate requests: single-token output finishes at prefill;
    /// zero-output is clamped to one token.
    #[test]
    fn degenerate_output_lengths_complete() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 50, 1, 0));
        e.submit(req(2, 2, 0.0, 50, 0, 0));
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 2);
        for r in &rs {
            assert_eq!(r.output_tokens, 1);
            assert_eq!(r.first_token, r.finish, "finishes at the prefill step");
        }
    }

    /// Interleaved turns of many conversations keep per-conversation
    /// cache accounting exact across hundreds of iterations.
    #[test]
    fn many_conversations_accounting_stays_exact() {
        let mut e = engine(EngineConfig::pensieve());
        let mut at = 0.0f64;
        let mut id = 0u64;
        let mut hist = [0usize; 8];
        for round in 0..4 {
            for conv in 0..8u64 {
                let prompt = 20 + (conv as usize * 13 + round * 7) % 80;
                let output = 10 + (conv as usize * 5 + round * 11) % 60;
                e.submit(req(id, conv, at, prompt, output, hist[conv as usize]));
                id += 1;
                at += 0.2;
                hist[conv as usize] += prompt + output;
            }
            at += 30.0;
            e.run_until(SimTime::from_secs(at));
        }
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 32);
        // Conservation per response: prefill + cached covers history+prompt.
        for r in &rs {
            assert!(r.prefill_tokens >= 1);
            assert!(r.output_tokens >= 1);
        }
        // All history reuse was served from cache (no pressure here).
        assert_eq!(e.cache_stats().recomputed_tokens, 0);
        assert!(e.cache_stats().gpu_hit_tokens > 0);
    }

    /// §4.3.3's payoff: restoring a conversation from the CPU tier
    /// (pipelined swap-in) is far cheaper than recomputing it, so the
    /// two-tier Pensieve beats the GPU-cache-only variant once contexts
    /// get evicted.
    #[test]
    fn swap_in_beats_recompute_on_return() {
        let mut hw = small_hw();
        // Small GPU so the first conversation gets evicted; large CPU so
        // the full Pensieve keeps it in the second tier.
        hw.gpu_kv_budget_bytes = 3000 * ModelConfig::opt_13b().kv_bytes_per_token();
        hw.cpu_cache_bytes_per_gpu = 8 << 30;
        let ttft_of = |cfg: EngineConfig| {
            let mut e = SimServingEngine::builder(cfg, ModelConfig::opt_13b(), hw.clone()).build();
            // Conversation 1 builds 2000 tokens of context.
            e.submit(req(1, 1, 0.0, 1960, 40, 0));
            e.run_until_idle();
            let t1 = e.drain_responses().remove(0);
            // Conversation 2 floods the GPU tier.
            let mut r2 = req(2, 2, 0.0, 2500, 30, 0);
            r2.arrival = t1.finish + SimDuration::from_secs(1.0);
            e.submit(r2);
            e.run_until_idle();
            e.drain_responses();
            // Conversation 1 returns.
            let mut r3 = req(3, 1, 0.0, 40, 20, 2000);
            r3.arrival = e.now() + SimDuration::from_secs(1.0);
            e.submit(r3);
            e.run_until_idle();
            e.drain_responses().remove(0).ttft()
        };
        let two_tier = ttft_of(EngineConfig::pensieve());
        let gpu_only = ttft_of(EngineConfig::pensieve_gpu_cache());
        assert!(
            two_tier.as_secs() < 0.6 * gpu_only.as_secs(),
            "swap-in ttft {two_tier} should beat recompute ttft {gpu_only}"
        );
    }

    /// Chunked prefill produces the same completions, in more iterations,
    /// and shields concurrent decodes from long-prompt stalls.
    #[test]
    fn chunked_prefill_preserves_results_and_smooths_decode() {
        let run = |cfg: EngineConfig| {
            let mut e = engine(cfg);
            // A long-running decode...
            e.submit(req(1, 1, 0.0, 50, 400, 0));
            // ...joined mid-flight by a huge prefill.
            e.submit(req(2, 2, 1.0, 3500, 20, 0));
            e.run_until_idle();
            let rs = e.drain_responses();
            assert_eq!(rs.len(), 2);
            let r1 = rs.iter().find(|r| r.id == RequestId(1)).unwrap().clone();
            let r2 = rs.iter().find(|r| r.id == RequestId(2)).unwrap().clone();
            (r1, r2)
        };
        let (whole_r1, whole_r2) = run(EngineConfig::pensieve());
        let (chunk_r1, chunk_r2) = run(EngineConfig::pensieve_chunked_prefill(512));
        // Same token counts either way; the prefill work is conserved.
        assert_eq!(whole_r1.output_tokens, chunk_r1.output_tokens);
        assert_eq!(whole_r2.output_tokens, chunk_r2.output_tokens);
        assert_eq!(whole_r2.prefill_tokens, chunk_r2.prefill_tokens);
        // The chunked prefill's own first token arrives no earlier (it is
        // spread over several iterations)...
        assert!(chunk_r2.ttft() >= whole_r2.ttft());
        // ...but the concurrent decode's normalized latency improves: no
        // single iteration stalls it for the whole 3500-token prompt.
        assert!(
            chunk_r1.normalized_latency().as_secs()
                < whole_r1.normalized_latency().as_secs() * 0.999,
            "chunked {} vs whole {}",
            chunk_r1.normalized_latency(),
            whole_r1.normalized_latency()
        );
    }

    /// `run_until_or_response(None)` must not busy-advance the clock to
    /// a future arrival: a fair multi-replica polling loop would
    /// otherwise let one replica's clock leap past its siblings.
    #[test]
    fn poll_without_deadline_never_advances_past_present() {
        let mut e = engine(EngineConfig::pensieve());
        assert!(!e.run_until_or_response(None), "idle engine yields false");
        assert_eq!(e.now(), SimTime::ZERO);
        // A future-dated arrival is pending work, but not *due* work.
        e.submit(req(1, 1, 5.0, 100, 10, 0));
        assert!(!e.run_until_or_response(None));
        assert_eq!(e.now(), SimTime::ZERO, "clock must not jump to t=5");
        // With a deadline past the arrival the request is served.
        assert!(e.run_until_or_response(Some(SimTime::from_secs(100.0))));
        assert_eq!(e.drain_responses().len(), 1);
    }

    /// Export on one engine + import on another moves the KV state: the
    /// follow-up turn at the target serves history from cache.
    #[test]
    fn session_handoff_carries_cache_across_engines() {
        let mut a = engine(EngineConfig::pensieve());
        a.submit(req(1, 7, 0.0, 100, 50, 0));
        a.run_until_idle();
        assert_eq!(a.drain_responses().len(), 1);
        let conv = SessionId(7);
        assert!(a.cached_tokens(conv) > 0);

        let export = a.export_session(conv).expect("completed session exports");
        assert_eq!(a.cached_tokens(conv), 0, "source relinquished the state");

        let mut b = engine(EngineConfig::pensieve());
        let admitted = b.import_session(export);
        assert!(admitted > 0);
        assert_eq!(b.cached_tokens(conv), admitted);
        let mut r2 = req(2, 7, 0.0, 40, 50, 150);
        r2.arrival = b.now() + SimDuration::from_secs(1.0);
        b.submit(r2);
        b.run_until_idle();
        let t2 = b.drain_responses().remove(0);
        assert!(
            t2.cached_history_tokens > 0,
            "imported chunks must serve the follow-up turn's history"
        );
    }

    /// Sessions with queued or running work refuse to export.
    #[test]
    fn export_refuses_in_flight_sessions() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 3, 0.0, 100, 50, 0));
        assert!(e.export_session(SessionId(3)).is_none(), "queued");
        e.run_until_or_response(Some(SimTime::ZERO + SimDuration::from_micros(1.0)));
        if e.running_requests() > 0 {
            assert!(e.export_session(SessionId(3)).is_none(), "running");
        }
        e.run_until_idle();
        e.drain_responses();
        assert!(e.export_session(SessionId(3)).is_some(), "completed");
    }

    /// Fail-stop orphans every queued and running request, in order.
    #[test]
    fn fail_stop_orphans_all_work() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 100, 400, 0));
        e.submit(req(2, 2, 0.0, 100, 400, 0));
        e.run_until_or_response(Some(SimTime::ZERO + SimDuration::from_millis(50.0)));
        e.submit(req(3, 3, 0.0, 100, 10, 0));
        let before = e.running_requests() + e.waiting_requests();
        assert!(before > 0);
        let orphans = e.fail_stop();
        assert_eq!(orphans.len(), before);
        assert!(e.is_idle());
        let ids: Vec<u64> = orphans.iter().map(|r| r.id.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids.len(), 3);
        assert_eq!(sorted, vec![1, 2, 3]);
    }

    /// Under chaos-level fault injection every request still completes
    /// with its exact token counts; recovery shows up only in counters
    /// and timing.
    #[test]
    fn chaos_faults_preserve_token_counts() {
        use pensieve_sim::FaultConfig;
        let mut hw = small_hw();
        // Small GPU + CPU tier so swap-ins actually happen (and can fail).
        hw.gpu_kv_budget_bytes = 1500 * ModelConfig::opt_13b().kv_bytes_per_token();
        hw.cpu_cache_bytes_per_gpu = 1 << 30;
        let run = |faults: Option<FaultInjector>| {
            let mut b = SimServingEngine::builder(
                EngineConfig::pensieve(),
                ModelConfig::opt_13b(),
                hw.clone(),
            );
            if let Some(f) = faults {
                b = b.fault_injector(f);
            }
            let mut e = b.build();
            e.submit(req(1, 1, 0.0, 100, 400, 0));
            e.submit(req(2, 2, 0.1, 100, 400, 0));
            e.run_until_idle();
            // Both conversations return after an idle gap.
            let mut r3 = req(3, 1, 0.0, 50, 100, 500);
            r3.arrival = e.now() + SimDuration::from_secs(2.0);
            let mut r4 = req(4, 2, 0.0, 50, 100, 500);
            r4.arrival = e.now() + SimDuration::from_secs(2.1);
            e.submit(r3);
            e.submit(r4);
            e.run_until_idle();
            let mut rs = e.drain_responses();
            rs.sort_by_key(|r| r.id);
            (
                rs.iter()
                    .map(|r| (r.id, r.output_tokens, r.prefill_tokens))
                    .collect::<Vec<_>>(),
                e.counters().clone(),
            )
        };
        let (clean, clean_counters) = run(None);
        let mut chaos_cfg = FaultConfig::chaos(42);
        // Crank PCIe failures so swap-in retries certainly occur.
        chaos_cfg.pcie_failure = 0.6;
        let (faulty, counters) = run(Some(FaultInjector::new(chaos_cfg)));
        assert_eq!(faulty.len(), 4, "every request completes under faults");
        for (id, out, _prefill) in &faulty {
            let (cid, cout, _) = clean.iter().find(|(c, _, _)| c == id).unwrap();
            assert_eq!(id, cid);
            assert_eq!(out, cout, "output token counts must match fault-free");
        }
        assert!(
            counters.swap_in_retries > 0 || counters.chunk_faults > 0,
            "chaos config must exercise at least one recovery path: {counters:?}"
        );
        assert_eq!(clean_counters.swap_in_retries, 0);
        assert_eq!(clean_counters.chunk_faults, 0);
    }

    /// A fault rate of 1.0 on PCIe transfers forces every swap-in to
    /// exhaust its retries and fall back to recomputation — and the
    /// engine still completes everything.
    #[test]
    fn total_pcie_failure_falls_back_to_recompute() {
        use pensieve_sim::FaultConfig;
        let mut hw = small_hw();
        hw.gpu_kv_budget_bytes = 1200 * ModelConfig::opt_13b().kv_bytes_per_token();
        hw.cpu_cache_bytes_per_gpu = 1 << 30;
        let mut cfg = FaultConfig::disabled(7);
        cfg.pcie_failure = 1.0;
        let mut e =
            SimServingEngine::builder(EngineConfig::pensieve(), ModelConfig::opt_13b(), hw.clone())
                .fault_injector(FaultInjector::new(cfg))
                .build();
        e.submit(req(1, 1, 0.0, 100, 400, 0));
        e.submit(req(2, 2, 0.1, 100, 400, 0));
        e.run_until_idle();
        let mut r3 = req(3, 1, 0.0, 50, 50, 500);
        r3.arrival = e.now() + SimDuration::from_secs(2.0);
        e.submit(r3);
        e.run_until_idle();
        let rs = e.drain_responses();
        assert_eq!(rs.len(), 3);
        for r in &rs {
            assert!(r.output_tokens > 0);
        }
        // If any swap-in was needed it must have fallen back.
        if e.counters().swap_in_retries > 0 {
            assert!(e.counters().recompute_fallbacks > 0);
            assert!(e.cache_stats().swap_in_fault_tokens > 0);
        }
    }

    #[test]
    fn engine_reports_cache_hits_for_returning_conversations() {
        let mut e = engine(EngineConfig::pensieve());
        e.submit(req(1, 1, 0.0, 500, 100, 0));
        e.run_until_idle();
        let t1 = e.drain_responses().remove(0);
        let mut r2 = req(2, 1, 0.0, 30, 10, 600);
        r2.arrival = t1.finish + SimDuration::from_secs(2.0);
        e.submit(r2);
        e.run_until_idle();
        assert!(e.cache_stats().gpu_hit_tokens >= 599);
        assert_eq!(e.cache_stats().full_gpu_hits, 1);
    }
}
