//! Serving request/response types and latency accounting.

use std::fmt;

use pensieve_kvcache::SessionId;
use pensieve_model::{SimDuration, SimTime};

/// Unique request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// One conversation turn submitted to a serving engine.
///
/// Token *counts* describe the turn; the simulation engines never look at
/// token values. `history_tokens` is the cumulative context length before
/// this turn — a stateless engine must re-prefill it, a stateful engine
/// hopes to find it cached.
///
/// Construct via [`Request::builder`]; the `#[non_exhaustive]` attribute
/// blocks struct-literal construction outside this crate, so every call
/// site goes through the builder's validation.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Owning conversation.
    pub conv: SessionId,
    /// Arrival time at the serving system.
    pub arrival: SimTime,
    /// Length of the new user prompt in tokens.
    pub prompt_tokens: usize,
    /// Number of output tokens this turn will generate (from the trace;
    /// stands in for the position of the EOS token).
    pub output_tokens: usize,
    /// Conversation context length before this turn (all previous prompts
    /// and responses).
    pub history_tokens: usize,
}

impl Request {
    /// Starts building a request. [`RequestBuilder::build`] validates
    /// the combination and is the only construction path outside this
    /// crate.
    #[must_use]
    pub fn builder() -> RequestBuilder {
        RequestBuilder::default()
    }

    /// Context length after this turn completes.
    #[must_use]
    pub fn final_context(&self) -> usize {
        self.history_tokens + self.prompt_tokens + self.output_tokens
    }
}

/// Why a [`RequestBuilder`] refused to produce a [`Request`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestBuildError {
    /// No request id was given.
    MissingId,
    /// No owning session was given.
    MissingSession,
    /// The prompt was empty — every turn must carry at least one new
    /// query token (a zero-token prompt would produce an empty prefill).
    EmptyPrompt,
}

impl fmt::Display for RequestBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestBuildError::MissingId => write!(f, "request id not set"),
            RequestBuildError::MissingSession => write!(f, "owning session not set"),
            RequestBuildError::EmptyPrompt => {
                write!(f, "prompt_tokens must be at least 1")
            }
        }
    }
}

impl std::error::Error for RequestBuildError {}

/// Builder for [`Request`] with typed validation.
///
/// `arrival`, `output_tokens` and `history_tokens` default to zero; id,
/// session and a non-empty prompt are mandatory.
#[derive(Debug, Clone, Default)]
pub struct RequestBuilder {
    id: Option<RequestId>,
    session: Option<SessionId>,
    arrival: SimTime,
    prompt_tokens: usize,
    output_tokens: usize,
    history_tokens: usize,
}

impl RequestBuilder {
    /// Sets the unique request id (mandatory).
    #[must_use]
    pub fn id(mut self, id: RequestId) -> Self {
        self.id = Some(id);
        self
    }

    /// Sets the owning session (mandatory).
    #[must_use]
    pub fn session(mut self, session: SessionId) -> Self {
        self.session = Some(session);
        self
    }

    /// Sets the arrival time (default: [`SimTime::ZERO`]).
    #[must_use]
    pub fn arrival(mut self, at: SimTime) -> Self {
        self.arrival = at;
        self
    }

    /// Sets the new-prompt length in tokens (mandatory, at least 1).
    #[must_use]
    pub fn prompt_tokens(mut self, tokens: usize) -> Self {
        self.prompt_tokens = tokens;
        self
    }

    /// Sets the output tokens this turn generates (default 0: the turn
    /// completes at the end of prefill).
    #[must_use]
    pub fn output_tokens(mut self, tokens: usize) -> Self {
        self.output_tokens = tokens;
        self
    }

    /// Sets the conversation context length before this turn (default 0).
    #[must_use]
    pub fn history_tokens(mut self, tokens: usize) -> Self {
        self.history_tokens = tokens;
        self
    }

    /// Validates and produces the request.
    ///
    /// # Errors
    ///
    /// [`RequestBuildError::MissingId`], [`RequestBuildError::MissingSession`]
    /// or [`RequestBuildError::EmptyPrompt`] when the corresponding field
    /// is absent or invalid.
    pub fn build(self) -> Result<Request, RequestBuildError> {
        let id = self.id.ok_or(RequestBuildError::MissingId)?;
        let conv = self.session.ok_or(RequestBuildError::MissingSession)?;
        if self.prompt_tokens == 0 {
            return Err(RequestBuildError::EmptyPrompt);
        }
        Ok(Request {
            id,
            conv,
            arrival: self.arrival,
            prompt_tokens: self.prompt_tokens,
            output_tokens: self.output_tokens,
            history_tokens: self.history_tokens,
        })
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: RequestId,
    /// Owning conversation.
    pub conv: SessionId,
    /// Request arrival time.
    pub arrival: SimTime,
    /// When the first output token was produced.
    pub first_token: SimTime,
    /// When the last output token was produced.
    pub finish: SimTime,
    /// Output tokens generated.
    pub output_tokens: usize,
    /// Query tokens processed in the prefill phase (prompt + any
    /// recomputed history; for stateless engines the entire context).
    pub prefill_tokens: usize,
    /// History tokens served from cache (GPU hits + swap-ins).
    pub cached_history_tokens: usize,
}

impl Response {
    /// End-to-end latency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `finish < arrival`.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finish.duration_since(self.arrival)
    }

    /// The paper's normalized latency: end-to-end latency divided by the
    /// number of output tokens (§6.1).
    #[must_use]
    pub fn normalized_latency(&self) -> SimDuration {
        self.latency() / self.output_tokens.max(1) as f64
    }

    /// Time to first token.
    #[must_use]
    pub fn ttft(&self) -> SimDuration {
        self.first_token.duration_since(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(arrival: f64, first: f64, finish: f64, out: usize) -> Response {
        Response {
            id: RequestId(1),
            conv: SessionId(1),
            arrival: SimTime::from_secs(arrival),
            first_token: SimTime::from_secs(first),
            finish: SimTime::from_secs(finish),
            output_tokens: out,
            prefill_tokens: 10,
            cached_history_tokens: 0,
        }
    }

    #[test]
    fn latency_accounting() {
        let r = resp(1.0, 1.5, 5.0, 40);
        assert_eq!(r.latency().as_secs(), 4.0);
        assert_eq!(r.normalized_latency().as_millis(), 100.0);
        assert_eq!(r.ttft().as_millis(), 500.0);
    }

    #[test]
    fn zero_output_does_not_divide_by_zero() {
        let r = resp(0.0, 1.0, 2.0, 0);
        assert_eq!(r.normalized_latency().as_secs(), 2.0);
    }

    #[test]
    fn builder_validates_required_fields() {
        assert_eq!(
            Request::builder().build().unwrap_err(),
            RequestBuildError::MissingId
        );
        assert_eq!(
            Request::builder().id(RequestId(1)).build().unwrap_err(),
            RequestBuildError::MissingSession
        );
        assert_eq!(
            Request::builder()
                .id(RequestId(1))
                .session(SessionId(2))
                .build()
                .unwrap_err(),
            RequestBuildError::EmptyPrompt
        );
        let r = Request::builder()
            .id(RequestId(1))
            .session(SessionId(2))
            .arrival(SimTime::from_secs(3.0))
            .prompt_tokens(10)
            .output_tokens(5)
            .history_tokens(20)
            .build()
            .unwrap();
        assert_eq!(r.id, RequestId(1));
        assert_eq!(r.conv, SessionId(2));
        assert_eq!(r.final_context(), 35);
    }

    #[test]
    fn final_context_sums_all_parts() {
        let req = Request {
            id: RequestId(1),
            conv: SessionId(1),
            arrival: SimTime::ZERO,
            prompt_tokens: 30,
            output_tokens: 200,
            history_tokens: 500,
        };
        assert_eq!(req.final_context(), 730);
    }
}
