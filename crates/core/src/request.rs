//! Serving request/response types and latency accounting.

use pensieve_kvcache::ConversationId;
use pensieve_model::{SimDuration, SimTime};

/// Unique request identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// One conversation turn submitted to a serving engine.
///
/// Token *counts* describe the turn; the simulation engines never look at
/// token values. `history_tokens` is the cumulative context length before
/// this turn — a stateless engine must re-prefill it, a stateful engine
/// hopes to find it cached.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Unique id.
    pub id: RequestId,
    /// Owning conversation.
    pub conv: ConversationId,
    /// Arrival time at the serving system.
    pub arrival: SimTime,
    /// Length of the new user prompt in tokens.
    pub prompt_tokens: usize,
    /// Number of output tokens this turn will generate (from the trace;
    /// stands in for the position of the EOS token).
    pub output_tokens: usize,
    /// Conversation context length before this turn (all previous prompts
    /// and responses).
    pub history_tokens: usize,
}

impl Request {
    /// Context length after this turn completes.
    #[must_use]
    pub fn final_context(&self) -> usize {
        self.history_tokens + self.prompt_tokens + self.output_tokens
    }
}

/// Completion record for one request.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's id.
    pub id: RequestId,
    /// Owning conversation.
    pub conv: ConversationId,
    /// Request arrival time.
    pub arrival: SimTime,
    /// When the first output token was produced.
    pub first_token: SimTime,
    /// When the last output token was produced.
    pub finish: SimTime,
    /// Output tokens generated.
    pub output_tokens: usize,
    /// Query tokens processed in the prefill phase (prompt + any
    /// recomputed history; for stateless engines the entire context).
    pub prefill_tokens: usize,
    /// History tokens served from cache (GPU hits + swap-ins).
    pub cached_history_tokens: usize,
}

impl Response {
    /// End-to-end latency.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `finish < arrival`.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finish.duration_since(self.arrival)
    }

    /// The paper's normalized latency: end-to-end latency divided by the
    /// number of output tokens (§6.1).
    #[must_use]
    pub fn normalized_latency(&self) -> SimDuration {
        self.latency() / self.output_tokens.max(1) as f64
    }

    /// Time to first token.
    #[must_use]
    pub fn ttft(&self) -> SimDuration {
        self.first_token.duration_since(self.arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn resp(arrival: f64, first: f64, finish: f64, out: usize) -> Response {
        Response {
            id: RequestId(1),
            conv: ConversationId(1),
            arrival: SimTime::from_secs(arrival),
            first_token: SimTime::from_secs(first),
            finish: SimTime::from_secs(finish),
            output_tokens: out,
            prefill_tokens: 10,
            cached_history_tokens: 0,
        }
    }

    #[test]
    fn latency_accounting() {
        let r = resp(1.0, 1.5, 5.0, 40);
        assert_eq!(r.latency().as_secs(), 4.0);
        assert_eq!(r.normalized_latency().as_millis(), 100.0);
        assert_eq!(r.ttft().as_millis(), 500.0);
    }

    #[test]
    fn zero_output_does_not_divide_by_zero() {
        let r = resp(0.0, 1.0, 2.0, 0);
        assert_eq!(r.normalized_latency().as_secs(), 2.0);
    }

    #[test]
    fn final_context_sums_all_parts() {
        let req = Request {
            id: RequestId(1),
            conv: ConversationId(1),
            arrival: SimTime::ZERO,
            prompt_tokens: 30,
            output_tokens: 200,
            history_tokens: 500,
        };
        assert_eq!(req.final_context(), 730);
    }
}
