//! The [`ServingBackend`] trait: the polymorphic seam between workload
//! drivers and anything that serves requests.
//!
//! [`crate::SimServingEngine`] is one implementation (a single replica);
//! `pensieve-cluster`'s `Router` is another (N replicas behind a
//! placement policy), and the router *also drives its replicas only
//! through this trait*, so a backend never needs to be a concrete
//! engine. The contract splits into four groups:
//!
//! * **Work flow** — [`submit`](ServingBackend::submit),
//!   [`poll`](ServingBackend::poll),
//!   [`responses_ready`](ServingBackend::responses_ready),
//!   [`drain_responses`](ServingBackend::drain_responses).
//! * **Clock** — [`now`](ServingBackend::now),
//!   [`run_until`](ServingBackend::run_until). Simulated time only ever
//!   moves forward; `poll(None)` must not advance the clock past the
//!   present (see the fair-polling note on [`ServingBackend::poll`]).
//! * **Capacity and cache introspection** — queue depths, GPU/CPU
//!   occupancy, per-session cached tokens, aggregate [`CacheStats`].
//!   Everything a placement policy may read; all side-effect free.
//! * **State handoff** — [`export_session`](ServingBackend::export_session),
//!   [`import_session`](ServingBackend::import_session),
//!   [`fail_stop`](ServingBackend::fail_stop): the migration and
//!   fault-recovery primitives (DéjàVu-style KV streaming, with
//!   Pensieve's dropped-token recomputation as the fallback).

use pensieve_kvcache::{CacheStats, SessionExport, SessionId, SessionManifest};
use pensieve_model::SimTime;

use crate::request::{Request, Response};

/// A serving system that accepts requests and produces responses on a
/// simulated clock. See the [module docs](self) for the contract.
pub trait ServingBackend {
    /// Enqueues a request. Admission is FCFS in submission order; a
    /// request whose arrival lies in the backend's past is admissible
    /// immediately.
    fn submit(&mut self, req: Request);

    /// Runs until the clock reaches `deadline` (if given), at least one
    /// response is ready to drain, or no more work is due — whichever
    /// comes first. Returns true if a response is ready.
    ///
    /// With `deadline: None` the backend must not advance its clock past
    /// the present when it has nothing due: it returns `false` instead.
    /// Fair multi-backend polling loops rely on this to interleave
    /// progress without one backend's clock leaping ahead.
    fn poll(&mut self, deadline: Option<SimTime>) -> bool;

    /// True if at least one completed response is waiting to be drained.
    fn responses_ready(&self) -> bool;

    /// Drains completed responses, in completion order.
    fn drain_responses(&mut self) -> Vec<Response>;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Runs until the clock reaches `t` (work in flight at `t` finishes;
    /// the clock may overshoot) or all submitted work completes.
    fn run_until(&mut self, t: SimTime);

    /// True if no request is running or waiting.
    fn is_idle(&self) -> bool;

    /// Requests currently in the running batch.
    fn running_requests(&self) -> usize;

    /// Requests currently waiting for admission.
    fn waiting_requests(&self) -> usize;

    /// Total requests on the backend (running + waiting) — the load
    /// signal placement policies balance on.
    fn queue_depth(&self) -> usize {
        self.running_requests() + self.waiting_requests()
    }

    /// GPU KV slots currently in use (tokens).
    fn gpu_slots_used(&self) -> usize;

    /// Total GPU KV slot capacity (tokens).
    fn gpu_capacity_tokens(&self) -> usize;

    /// CPU cache tokens currently in use.
    fn cpu_tokens_used(&self) -> usize;

    /// KV bytes per cached token — what a migration must stream per
    /// token of exported context.
    fn kv_bytes_per_token(&self) -> usize;

    /// History tokens of `session` servable from this backend's KV cache
    /// right now (excluding any globally shared prefix, which every
    /// backend holds and thus never differentiates placement).
    fn cached_tokens(&self, session: SessionId) -> usize;

    /// Aggregate cache statistics snapshot. For composite backends this
    /// is the field-wise sum over constituents.
    fn cache_stats(&self) -> CacheStats;

    /// Removes `session`'s KV state for handoff. `None` when the session
    /// is unknown or still has in-flight work here.
    fn export_session(&mut self, session: SessionId) -> Option<SessionExport>;

    /// Installs a handed-off session snapshot; returns the tokens
    /// admitted to cache (0 when the import is refused and the session
    /// will recompute instead).
    fn import_session(&mut self, export: SessionExport) -> usize;

    /// Fail-stop: the backend dies, its KV state is unrecoverable, and
    /// every queued or running request is orphaned and returned for
    /// re-routing. Partial output is discarded; completed responses
    /// remain drainable.
    fn fail_stop(&mut self) -> Vec<Request>;

    /// Drains the backend's KV commit log: sessions whose committed
    /// (cache-resident) context grew since the last drain, each with its
    /// new total committed token count, in `SessionId` order. A
    /// replication stream consumes this to learn what delta to ship to a
    /// standby; backends with no commit tracking return nothing and are
    /// simply not replicable.
    fn take_committed_kv(&mut self) -> Vec<(SessionId, usize)> {
        Vec::new()
    }

    /// Sessions whose cache state is eligible for cold-tier manifest
    /// persistence, in ascending id order. Backends without manifest
    /// support return nothing and their sessions are simply not
    /// rehydratable across restarts.
    fn manifest_sessions(&self) -> Vec<SessionId> {
        Vec::new()
    }

    /// Builds a cold-tier manifest of `session`'s chunk layout for
    /// persistence, or `None` when the backend does not track the
    /// session (or does not support manifests).
    fn session_manifest(&self, _session: SessionId) -> Option<SessionManifest> {
        None
    }

    /// Rebuilds a session from a persisted manifest (chunks re-admitted
    /// at the cold tier, up to capacity); returns the tokens admitted.
    /// Backends without manifest support refuse with 0 and the session
    /// recomputes instead.
    fn rehydrate_session(&mut self, _manifest: &SessionManifest) -> usize {
        0
    }
}
