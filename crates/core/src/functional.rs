//! A functional (real-math) serving engine for end-to-end validation.
//!
//! [`FunctionalEngine`] serves multi-turn conversations with the tiny
//! transformer from `pensieve-kernels`, exercising every *data-path*
//! mechanism of the paper for real: KV-tokens are retained across turns in
//! the paged GPU pool, evicted block-by-block (leading end first, LRU
//! across conversations) into a host-memory stash, swapped back in on
//! return, and — when the stash overflows — dropped and later *recomputed*
//! from raw tokens as a leading sub-request (paper Figure 8).
//!
//! Because every step does real arithmetic, the integration tests can
//! assert the strongest property the design must preserve: **a stateful
//! engine's output tokens are identical to stateless recomputation from
//! scratch**, no matter how the cache shuffled the data in between.

use std::collections::BTreeMap;

use pensieve_kernels::model::{SegmentInput, SeqInput, TinyModel};
use pensieve_kernels::ops::argmax;
use pensieve_kernels::paged::{BlockId, BlockTable, PagedKvCache};
use pensieve_kvcache::{CacheError, SessionId, TokenChunkStore};
use pensieve_model::ModelConfig;
use pensieve_sim::{FaultCounters, FaultInjector, FaultKind};

/// KV data of one evicted block, for all layers.
struct HostBlock {
    /// Per layer: (K rows, V rows), each `block_size * kv_width` floats.
    layers: Vec<(Vec<f32>, Vec<f32>)>,
    /// FNV-1a over the f32 bit patterns, taken at swap-out. Verified on
    /// swap-in so silent host-memory corruption downgrades to a recompute
    /// instead of poisoning the KV state.
    checksum: u64,
}

/// FNV-1a over the bit patterns of every float in the block.
fn kv_checksum(layers: &[(Vec<f32>, Vec<f32>)]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |xs: &[f32]| {
        for x in xs {
            for b in x.to_bits().to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    };
    for (k, v) in layers {
        eat(k);
        eat(v);
    }
    h
}

struct ConvState {
    table: BlockTable,
    /// Logical clock of last activity, for LRU eviction.
    last_active: u64,
}

/// Configuration of the functional engine's memory system.
#[derive(Debug, Clone)]
pub struct FunctionalConfig {
    /// Tokens per KV block.
    pub block_size: usize,
    /// Physical GPU-pool blocks.
    pub pool_blocks: usize,
    /// Host-stash capacity in blocks (0 disables the CPU tier).
    pub stash_blocks: usize,
    /// Evict when free pool blocks fall below this count.
    pub free_watermark: usize,
}

impl Default for FunctionalConfig {
    fn default() -> Self {
        FunctionalConfig {
            block_size: 4,
            pool_blocks: 64,
            stash_blocks: 64,
            free_watermark: 8,
        }
    }
}

/// The functional serving engine.
pub struct FunctionalEngine {
    model: TinyModel,
    pool: PagedKvCache,
    cfg: FunctionalConfig,
    convs: BTreeMap<SessionId, ConvState>,
    /// Evicted block data keyed by (conversation, logical block index).
    stash: BTreeMap<(SessionId, usize), HostBlock>,
    /// Insertion order of stash entries, for drop-from-front decisions.
    stash_order: Vec<(SessionId, usize)>,
    store: TokenChunkStore,
    clock: u64,
    /// Counters: (swapped_out, swapped_in, dropped, recomputed) blocks.
    swap_out_blocks: u64,
    swap_in_blocks: u64,
    dropped_blocks: u64,
    recomputed_tokens: u64,
    /// Optional deterministic fault source targeting the host stash.
    faults: Option<FaultInjector>,
    /// Stashed blocks destroyed by injected loss.
    lost_blocks: u64,
    /// Stashed blocks whose checksum failed on swap-in.
    corrupt_blocks: u64,
}

impl FunctionalEngine {
    /// Builds an engine with deterministic random weights.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` has a zero block size or pool.
    #[must_use]
    pub fn new(model_cfg: &ModelConfig, seed: u64, cfg: FunctionalConfig) -> Self {
        assert!(cfg.block_size > 0 && cfg.pool_blocks > 0);
        let model = TinyModel::new_random(model_cfg, seed);
        let pool = PagedKvCache::new(
            model.kv_layout(cfg.block_size),
            model_cfg.num_layers,
            cfg.pool_blocks,
        );
        let store = TokenChunkStore::new(cfg.block_size);
        FunctionalEngine {
            model,
            pool,
            cfg,
            convs: BTreeMap::new(),
            stash: BTreeMap::new(),
            stash_order: Vec::new(),
            store,
            clock: 0,
            swap_out_blocks: 0,
            swap_in_blocks: 0,
            dropped_blocks: 0,
            recomputed_tokens: 0,
            faults: None,
            lost_blocks: 0,
            corrupt_blocks: 0,
        }
    }

    /// Installs a deterministic fault injector. Each turn it may destroy a
    /// stashed block (loss) or flip a bit in one (corruption, caught by
    /// the checksum on swap-in); both downgrade to recomputation, so
    /// outputs stay bit-identical to the fault-free run.
    pub fn set_fault_injector(&mut self, faults: FaultInjector) {
        self.faults = Some(faults);
    }

    /// Faults injected so far, if an injector is installed.
    #[must_use]
    pub fn fault_counters(&self) -> Option<&FaultCounters> {
        self.faults.as_ref().map(FaultInjector::counters)
    }

    /// Stashed blocks (destroyed by injected loss, rejected by checksum).
    #[must_use]
    pub fn fault_activity(&self) -> (u64, u64) {
        (self.lost_blocks, self.corrupt_blocks)
    }

    /// The underlying model (for building stateless references).
    #[must_use]
    pub fn model(&self) -> &TinyModel {
        &self.model
    }

    /// Sets the number of worker threads used by the model's batched
    /// compute kernels (see
    /// [`TinyModel::set_threads`]). Served tokens are bit-identical at
    /// every setting, so this is purely a latency knob.
    pub fn set_compute_threads(&mut self, threads: usize) {
        self.model.set_threads(threads);
    }

    /// Full raw history of a conversation, composed back into logical
    /// order from the store's shared chunk chain and private tail.
    #[must_use]
    pub fn history(&self, conv: SessionId) -> Vec<u32> {
        self.store
            .view(conv)
            .map(|v| v.to_vec())
            .unwrap_or_default()
    }

    /// Forks `parent` into a new conversation `child`. The raw-token
    /// history is shared by reference in the chunked store (no tokens
    /// are copied); the child starts with no resident KV and recomputes
    /// lazily on its first turn, so serving it is bit-identical to
    /// serving a fresh conversation fed the parent's full history.
    ///
    /// # Errors
    ///
    /// [`CacheError::UnknownConversation`] if `parent` was never served;
    /// [`CacheError::SessionExists`] if `child` already has history.
    pub fn fork_conversation(&mut self, parent: SessionId, child: SessionId) -> Result<(), CacheError> {
        self.store.fork(parent, child)
    }

    /// `(physical, logical)` raw-token counts in the chunked store; the
    /// ratio is the store's dedup factor across forked conversations.
    #[must_use]
    pub fn store_dedup(&self) -> (usize, usize) {
        (self.store.physical_tokens(), self.store.logical_tokens())
    }

    /// Blocks swapped out / swapped in / dropped, and tokens recomputed.
    #[must_use]
    pub fn cache_activity(&self) -> (u64, u64, u64, u64) {
        (
            self.swap_out_blocks,
            self.swap_in_blocks,
            self.dropped_blocks,
            self.recomputed_tokens,
        )
    }

    /// Serves one conversation turn: processes `prompt` on top of the
    /// conversation's cached context and greedily decodes `max_new`
    /// tokens. Returns the generated tokens.
    ///
    /// # Panics
    ///
    /// Panics if `prompt` is empty, `max_new` is zero, or the GPU pool is
    /// too small to hold a single turn's working set.
    pub fn serve_turn(&mut self, conv: SessionId, prompt: &[u32], max_new: usize) -> Vec<u32> {
        assert!(!prompt.is_empty() && max_new > 0);
        self.clock += 1;
        self.fault_tick();
        let clock = self.clock;
        let block_size = self.cfg.block_size;
        self.convs.entry(conv).or_insert_with(|| ConvState {
            table: BlockTable::new(block_size),
            last_active: clock,
        });

        // --- Restore phase: swap in or schedule recompute for holes. ---
        let cached_len = self.convs[&conv].table.len();
        let nb = cached_len.div_ceil(self.cfg.block_size);
        let mut recompute_blocks = Vec::new();
        for bi in 0..nb {
            if self.convs[&conv].table.get_block(bi).is_none() {
                recompute_blocks.push(bi);
            }
        }
        // Allocate backing for every hole (evicting others if needed).
        self.make_room(conv, recompute_blocks.len() + 2);
        let mut recompute_ranges: Vec<std::ops::Range<usize>> = Vec::new();
        for bi in recompute_blocks {
            // lint:allow(r1-panic): entry inserted at turn start.
            let state = self.convs.get_mut(&conv).expect("created above");
            let filled = state
                .table
                .refill(&mut self.pool, bi..bi + 1)
                // lint:allow(r1-panic): make_room reserved one block per
                // hole plus slack; serve_turn documents panic semantics.
                .expect("make_room reserved space");
            let (_, phys) = filled[0];
            let stashed = self.stash.remove(&(conv, bi)).and_then(|hb| {
                self.stash_order.retain(|k| *k != (conv, bi));
                if kv_checksum(&hb.layers) == hb.checksum {
                    Some(hb)
                } else {
                    // Corrupted in host memory: discard and recompute.
                    self.corrupt_blocks += 1;
                    None
                }
            });
            if let Some(hb) = stashed {
                // Swap in: copy the stashed data back.
                self.write_host_block(phys, &hb);
                self.swap_in_blocks += 1;
            } else {
                // Dropped: recompute from raw tokens.
                let start = bi * self.cfg.block_size;
                let end = (start + self.cfg.block_size).min(cached_len);
                match recompute_ranges.last_mut() {
                    Some(r) if r.end == start => r.end = end,
                    _ => recompute_ranges.push(start..end),
                }
                self.recomputed_tokens += (end - start) as u64;
            }
        }

        // --- Prefill: recompute segments + (history tail + prompt). ---
        let hist_len = self.store.len(conv);
        debug_assert!(cached_len <= hist_len || hist_len == 0);
        self.store.append(conv, prompt);
        let mut segments = Vec::new();
        for r in &recompute_ranges {
            segments.push(SegmentInput {
                tokens: self
                    .store
                    .view(conv)
                    .and_then(|v| v.slice(r.clone()))
                    // lint:allow(r1-panic): recompute ranges are clipped
                    // to cached_len <= hist_len above; serve_turn
                    // documents its panic semantics.
                    .expect("range clipped"),
                start_pos: r.start,
            });
        }
        // The tail covers raw history beyond the cached context (at least
        // the previous turn's final token) plus the new prompt.
        let tail: Vec<u32> = self
            .store
            .view(conv)
            .and_then(|v| v.slice(cached_len..hist_len))
            // lint:allow(r1-panic): cached_len <= hist_len is asserted
            // above and predates this turn's append; serve_turn documents
            // its panic semantics.
            .expect("tail within history");
        let mut last_seg: Vec<u32> = tail;
        last_seg.extend_from_slice(prompt);
        segments.push(SegmentInput {
            tokens: last_seg,
            start_pos: cached_len,
        });

        // Blocks for the tokens the prefill will append (tail + prompt);
        // decode growth makes room incrementally per step.
        let needed_blocks = (hist_len + prompt.len() - cached_len) / self.cfg.block_size + 2;
        self.make_room(conv, needed_blocks.min(self.cfg.pool_blocks / 2));
        let mut next = {
            // lint:allow(r1-panic): entry inserted at turn start.
            let state = self.convs.get_mut(&conv).expect("exists");
            let mut batch = [SeqInput {
                segments,
                table: &mut state.table,
            }];
            let logits = self
                .model
                .forward(&mut self.pool, &mut batch)
                // lint:allow(r1-panic): make_room reserved the prefill
                // working set; serve_turn documents panic semantics.
                .expect("make_room reserved space");
            argmax(logits.row(0)) as u32
        };

        // --- Greedy decode. ---
        let mut generated = vec![next];
        for _ in 1..max_new {
            self.make_room(conv, 2);
            // lint:allow(r1-panic): entry inserted at turn start.
            let state = self.convs.get_mut(&conv).expect("exists");
            let pos = state.table.len();
            let mut batch = [SeqInput {
                segments: vec![SegmentInput {
                    tokens: vec![next],
                    start_pos: pos,
                }],
                table: &mut state.table,
            }];
            let logits = self
                .model
                .forward(&mut self.pool, &mut batch)
                // lint:allow(r1-panic): make_room reserved two blocks for
                // this decode step; serve_turn documents panic semantics.
                .expect("make_room reserved space");
            next = argmax(logits.row(0)) as u32;
            generated.push(next);
        }
        self.store.append(conv, &generated);
        // lint:allow(r1-panic): entry inserted at turn start.
        self.convs.get_mut(&conv).expect("exists").last_active = self.clock;
        generated
    }

    /// Stateless reference: greedy decode of `max_new` tokens after
    /// `context`, recomputing everything from scratch each step.
    #[must_use]
    pub fn reference_decode(&self, context: &[u32], max_new: usize) -> Vec<u32> {
        let mut ctx = context.to_vec();
        let mut out = Vec::new();
        for _ in 0..max_new {
            let logits = self.model.forward_dense(&ctx);
            let tok = argmax(&logits) as u32;
            out.push(tok);
            ctx.push(tok);
        }
        out
    }

    /// Ensures at least `blocks` free pool blocks, evicting fully-filled
    /// blocks of inactive conversations (leading end first, least recently
    /// active conversation first).
    fn make_room(&mut self, active: SessionId, blocks: usize) {
        let target = blocks.max(self.cfg.free_watermark.min(self.cfg.pool_blocks / 4));
        while self.pool.num_free() < target {
            let Some((victim, bi)) = self.pick_victim(active) else {
                break;
            };
            self.evict_block(victim, bi);
        }
        assert!(
            self.pool.num_free() >= blocks,
            "GPU pool too small: need {blocks} free of {}",
            self.pool.num_blocks()
        );
    }

    /// The leading resident, fully-filled block of the least recently
    /// active conversation other than `active`.
    fn pick_victim(&self, active: SessionId) -> Option<(SessionId, usize)> {
        let mut best: Option<(u64, SessionId)> = None;
        for (&cid, st) in &self.convs {
            if cid == active {
                continue;
            }
            // Only fully-filled blocks are evictable.
            let full_blocks = st.table.len() / self.cfg.block_size;
            let has_resident = (0..full_blocks).any(|bi| st.table.get_block(bi).is_some());
            if !has_resident {
                continue;
            }
            if best.is_none_or(|(t, c)| (st.last_active, cid.0) < (t, c.0)) {
                best = Some((st.last_active, cid));
            }
        }
        let (_, cid) = best?;
        let st = &self.convs[&cid];
        let full_blocks = st.table.len() / self.cfg.block_size;
        (0..full_blocks)
            .find(|&bi| st.table.get_block(bi).is_some())
            .map(|bi| (cid, bi))
    }

    /// Copies one block to the stash (or drops it if the stash is full or
    /// disabled) and frees its pool backing.
    fn evict_block(&mut self, conv: SessionId, bi: usize) {
        let phys = self.convs[&conv]
            .table
            .get_block(bi)
            // lint:allow(r1-panic): pick_victim returned this (conv, bi)
            // precisely because the block is resident.
            .expect("victim is resident");
        if self.cfg.stash_blocks > 0 {
            if self.stash.len() >= self.cfg.stash_blocks {
                // Drop the oldest stashed block entirely.
                let oldest = self.stash_order.remove(0);
                self.stash.remove(&oldest);
                self.dropped_blocks += 1;
            }
            let hb = self.read_host_block(phys);
            self.stash.insert((conv, bi), hb);
            self.stash_order.push((conv, bi));
            self.swap_out_blocks += 1;
        } else {
            self.dropped_blocks += 1;
        }
        // lint:allow(r1-panic): pick_victim only returns live entries.
        let state = self.convs.get_mut(&conv).expect("exists");
        state.table.free_blocks(&mut self.pool, bi..bi + 1);
    }

    fn read_host_block(&self, phys: BlockId) -> HostBlock {
        let bs = self.cfg.block_size;
        let layers: Vec<(Vec<f32>, Vec<f32>)> = (0..self.pool.num_layers())
            .map(|li| {
                let view = self.pool.layer(li);
                let mut k = Vec::new();
                let mut v = Vec::new();
                for slot in 0..bs {
                    k.extend_from_slice(view.k_token(phys, slot));
                    v.extend_from_slice(view.v_token(phys, slot));
                }
                (k, v)
            })
            .collect();
        let checksum = kv_checksum(&layers);
        HostBlock { layers, checksum }
    }

    /// One fault opportunity per turn against the host stash: an injected
    /// loss destroys a stashed block outright (discovered as a hole on the
    /// conversation's return); an injected corruption flips one bit of a
    /// stashed K row, which the swap-in checksum rejects. Both downgrade
    /// to recomputation from raw tokens.
    fn fault_tick(&mut self) {
        let Some(f) = self.faults.as_mut() else {
            return;
        };
        if self.stash_order.is_empty() {
            return;
        }
        if f.roll(FaultKind::CpuChunkLoss) {
            let key = self.stash_order.remove(f.pick(self.stash_order.len()));
            self.stash.remove(&key);
            self.lost_blocks += 1;
        }
        if !self.stash_order.is_empty() && f.roll(FaultKind::CpuChunkCorruption) {
            let key = self.stash_order[f.pick(self.stash_order.len())];
            // lint:allow(r1-panic): stash_order and stash are mutated in
            // lockstep everywhere; a miss would be accounting corruption.
            let hb = self.stash.get_mut(&key).expect("order tracks stash keys");
            // Flip a mantissa bit in the first stored K value; the stale
            // checksum now disagrees with the data.
            if let Some(x) = hb.layers.first_mut().and_then(|(k, _)| k.first_mut()) {
                *x = f32::from_bits(x.to_bits() ^ 0x0000_0400);
            }
        }
    }

    fn write_host_block(&mut self, phys: BlockId, hb: &HostBlock) {
        let bs = self.cfg.block_size;
        let tf = self.pool.layout().token_floats();
        for (li, (k, v)) in hb.layers.iter().enumerate() {
            for slot in 0..bs {
                self.pool.write_token(
                    li,
                    phys,
                    slot,
                    &k[slot * tf..(slot + 1) * tf],
                    &v[slot * tf..(slot + 1) * tf],
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prompt(seed: u32, len: usize, vocab: u32) -> Vec<u32> {
        (0..len as u32)
            .map(|i| (seed * 31 + i * 7) % vocab)
            .collect()
    }

    #[test]
    fn single_turn_matches_stateless() {
        let cfg = ModelConfig::tiny_llama();
        let mut e = FunctionalEngine::new(&cfg, 11, FunctionalConfig::default());
        let conv = SessionId(1);
        let p = prompt(1, 6, cfg.vocab_size as u32);
        let got = e.serve_turn(conv, &p, 4);
        let expect = e.reference_decode(&p, 4);
        assert_eq!(got, expect);
    }

    #[test]
    fn multi_turn_stateful_matches_stateless() {
        let cfg = ModelConfig::tiny_llama();
        let mut e = FunctionalEngine::new(&cfg, 12, FunctionalConfig::default());
        let conv = SessionId(1);
        let mut full: Vec<u32> = Vec::new();
        for turn in 0..3 {
            let p = prompt(turn + 1, 5, cfg.vocab_size as u32);
            let got = e.serve_turn(conv, &p, 3);
            full.extend_from_slice(&p);
            let expect = e.reference_decode(&full, 3);
            assert_eq!(got, expect, "turn {turn}");
            full.extend_from_slice(&got);
        }
        assert_eq!(e.history(conv), full);
    }

    #[test]
    fn eviction_and_swap_in_preserve_outputs() {
        let cfg = ModelConfig::tiny_llama();
        // Tiny pool: two conversations cannot both stay resident.
        let mut e = FunctionalEngine::new(
            &cfg,
            13,
            FunctionalConfig {
                block_size: 4,
                pool_blocks: 12,
                stash_blocks: 64,
                free_watermark: 2,
            },
        );
        let (a, b) = (SessionId(1), SessionId(2));
        let mut full_a: Vec<u32> = Vec::new();
        let mut full_b: Vec<u32> = Vec::new();
        for turn in 0..3 {
            let pa = prompt(10 + turn, 6, cfg.vocab_size as u32);
            let ga = e.serve_turn(a, &pa, 4);
            full_a.extend_from_slice(&pa);
            assert_eq!(ga, e.reference_decode(&full_a, 4), "conv a turn {turn}");
            full_a.extend_from_slice(&ga);

            let pb = prompt(20 + turn, 6, cfg.vocab_size as u32);
            let gb = e.serve_turn(b, &pb, 4);
            full_b.extend_from_slice(&pb);
            assert_eq!(gb, e.reference_decode(&full_b, 4), "conv b turn {turn}");
            full_b.extend_from_slice(&gb);
        }
        let (out, inn, _, _) = e.cache_activity();
        assert!(out > 0, "pool pressure must have caused eviction");
        assert!(inn > 0, "returning conversations must have swapped in");
    }

    #[test]
    fn dropped_blocks_are_recomputed_correctly() {
        let cfg = ModelConfig::tiny_llama();
        // No stash: every eviction is a drop -> recompute on return.
        let mut e = FunctionalEngine::new(
            &cfg,
            14,
            FunctionalConfig {
                block_size: 4,
                pool_blocks: 12,
                stash_blocks: 0,
                free_watermark: 2,
            },
        );
        let (a, b) = (SessionId(1), SessionId(2));
        let mut full_a: Vec<u32> = Vec::new();
        for turn in 0..2 {
            let pa = prompt(30 + turn, 8, cfg.vocab_size as u32);
            let ga = e.serve_turn(a, &pa, 3);
            full_a.extend_from_slice(&pa);
            assert_eq!(ga, e.reference_decode(&full_a, 3), "conv a turn {turn}");
            full_a.extend_from_slice(&ga);
            // Interleave a competing conversation to force eviction.
            let pb = prompt(40 + turn, 8, cfg.vocab_size as u32);
            e.serve_turn(b, &pb, 3);
        }
        // A returns after B's growth evicted (and dropped) A's prefix.
        let pa = prompt(50, 8, cfg.vocab_size as u32);
        let ga = e.serve_turn(a, &pa, 3);
        full_a.extend_from_slice(&pa);
        assert_eq!(ga, e.reference_decode(&full_a, 3), "final returning turn");
        let (_, _, dropped, recomputed) = e.cache_activity();
        assert!(dropped > 0, "evictions must drop without a stash");
        assert!(recomputed > 0, "returning conversation recomputed a prefix");
    }

    #[test]
    fn stash_faults_keep_outputs_bit_identical() {
        use pensieve_sim::FaultConfig;
        let cfg = ModelConfig::tiny_llama();
        let small = FunctionalConfig {
            block_size: 4,
            pool_blocks: 16,
            stash_blocks: 64,
            free_watermark: 2,
        };
        // Clean engine and faulty engine run the same workload; loss and
        // corruption fire aggressively against the stash.
        let mut clean = FunctionalEngine::new(&cfg, 17, small.clone());
        let mut faulty = FunctionalEngine::new(&cfg, 17, small);
        let mut fc = FaultConfig::disabled(99);
        fc.cpu_chunk_loss = 0.7;
        fc.cpu_chunk_corruption = 0.7;
        faulty.set_fault_injector(FaultInjector::new(fc));
        let (a, b) = (SessionId(1), SessionId(2));
        for turn in 0..4 {
            for &conv in &[a, b] {
                let p = prompt(60 + turn * 2 + conv.0 as u32, 6, cfg.vocab_size as u32);
                let want = clean.serve_turn(conv, &p, 4);
                let got = faulty.serve_turn(conv, &p, 4);
                assert_eq!(got, want, "conv {} turn {turn}", conv.0);
            }
        }
        let (lost, corrupt) = faulty.fault_activity();
        assert!(lost > 0, "injected losses must have destroyed stash blocks");
        assert!(corrupt > 0, "checksum must have caught a corrupted block");
        let ctrs = faulty.fault_counters().expect("injector installed");
        assert_eq!(ctrs.cpu_chunk_losses, lost);
        let (_, _, _, recomputed) = faulty.cache_activity();
        assert!(recomputed > 0, "faults must have forced recomputation");
        assert_eq!(clean.fault_activity(), (0, 0));
    }

    /// The compute-thread knob is a pure latency knob: served tokens are
    /// bit-identical at every setting.
    #[test]
    fn compute_threads_do_not_change_tokens() {
        let cfg = ModelConfig::tiny_llama();
        let mut serial = FunctionalEngine::new(&cfg, 18, FunctionalConfig::default());
        let mut par = FunctionalEngine::new(&cfg, 18, FunctionalConfig::default());
        par.set_compute_threads(4);
        let conv = SessionId(1);
        for turn in 0..2 {
            let p = prompt(70 + turn, 6, cfg.vocab_size as u32);
            assert_eq!(
                par.serve_turn(conv, &p, 3),
                serial.serve_turn(conv, &p, 3),
                "turn {turn}"
            );
        }
    }

    #[test]
    fn forked_conversation_matches_fresh_history_replay() {
        let cfg = ModelConfig::tiny_llama();
        let mut e = FunctionalEngine::new(&cfg, 16, FunctionalConfig::default());
        let (parent, child) = (SessionId(1), SessionId(2));
        for turn in 0..2 {
            let p = prompt(80 + turn, 6, cfg.vocab_size as u32);
            e.serve_turn(parent, &p, 3);
        }
        e.fork_conversation(parent, child)
            .expect("parent exists, child fresh");
        assert_eq!(
            e.fork_conversation(parent, child),
            Err(CacheError::SessionExists(child)),
            "double fork must be rejected"
        );
        let (physical, logical) = e.store_dedup();
        assert!(
            physical < logical,
            "fork must share sealed chunks: physical {physical} logical {logical}"
        );
        // The forked branch serves exactly like a fresh conversation
        // whose context is the parent's full history.
        let base = e.history(parent);
        let p = prompt(90, 6, cfg.vocab_size as u32);
        let got = e.serve_turn(child, &p, 4);
        let mut full = base.clone();
        full.extend_from_slice(&p);
        assert_eq!(got, e.reference_decode(&full, 4), "forked branch");
        // The parent's own continuation is unaffected by the fork.
        let pp = prompt(91, 6, cfg.vocab_size as u32);
        let gp = e.serve_turn(parent, &pp, 4);
        let mut full_p = base;
        full_p.extend_from_slice(&pp);
        assert_eq!(gp, e.reference_decode(&full_p, 4), "parent after fork");
    }

    #[test]
    fn opt_family_also_served_correctly() {
        let cfg = ModelConfig::tiny_opt();
        let mut e = FunctionalEngine::new(&cfg, 15, FunctionalConfig::default());
        let conv = SessionId(1);
        let p1 = prompt(3, 5, cfg.vocab_size as u32);
        let g1 = e.serve_turn(conv, &p1, 3);
        let mut full = p1.clone();
        assert_eq!(g1, e.reference_decode(&full, 3));
        full.extend_from_slice(&g1);
        let p2 = prompt(4, 4, cfg.vocab_size as u32);
        let g2 = e.serve_turn(conv, &p2, 3);
        full.extend_from_slice(&p2);
        assert_eq!(g2, e.reference_decode(&full, 3));
    }
}
