//! Roofline execution-cost model for transformer inference.
//!
//! The simulator needs `duration_of(batch)` for arbitrary mixed
//! prefill/decode batches. We model each transformer layer as two parts,
//! mirroring the decomposition the paper uses for its eviction-cost
//! estimate (§4.3.1):
//!
//! * **Non-attention** work (QKV/output projections, MLP, norms): FLOPs are
//!   linear in the number of batch tokens; memory traffic is dominated by
//!   reading the layer weights once per invocation plus streaming
//!   activations. This term is *weight-bound* for small batches — which is
//!   exactly why batching helps decoding.
//! * **Attention** work per request: `4 * s * l * hidden` FLOPs for a query
//!   chunk of `s` tokens attending to a context of `l` KV-tokens, and
//!   `l * 2 * kv_hidden * dtype` bytes of KV-cache traffic. This term grows
//!   linearly in `l` (paper Figure 4) and is KV-bandwidth-bound during
//!   generation.
//!
//! Each term is costed as `max(flops / effective_flops, bytes /
//! effective_bandwidth)` (the roofline), and a fixed per-layer kernel
//! overhead is added per invocation. Tensor parallelism divides FLOPs and
//! bytes across GPUs and adds two all-reduces per layer on the activations.

use serde::{Deserialize, Serialize};

use crate::config::{ModelConfig, ModelFamily};
use crate::hardware::HardwareSpec;
use crate::time::SimDuration;

/// Shape of one request's contribution to a batch step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SeqShape {
    /// Number of new (query) tokens processed this step: the prompt length
    /// for a prefill step, 1 for a generation step.
    pub query_len: usize,
    /// Total context length the query attends to, *including* the query
    /// tokens themselves (they are appended to the KV cache first).
    pub context_len: usize,
}

impl SeqShape {
    /// A generation (decode) step over an existing context of `context_len`
    /// tokens, including the newly appended one.
    #[must_use]
    pub fn decode(context_len: usize) -> Self {
        SeqShape {
            query_len: 1,
            context_len,
        }
    }

    /// A prefill step of `query_len` prompt tokens on top of
    /// `prior_context` already-cached tokens.
    #[must_use]
    pub fn prefill(query_len: usize, prior_context: usize) -> Self {
        SeqShape {
            query_len,
            context_len: prior_context + query_len,
        }
    }
}

/// The token-level shape of one batched model invocation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchShape {
    /// Per-request shapes; order does not affect cost.
    pub seqs: Vec<SeqShape>,
}

impl BatchShape {
    /// Creates a batch from per-request shapes.
    #[must_use]
    pub fn new(seqs: Vec<SeqShape>) -> Self {
        BatchShape { seqs }
    }

    /// Total number of query tokens across the batch.
    #[must_use]
    pub fn total_query_tokens(&self) -> usize {
        self.seqs.iter().map(|s| s.query_len).sum()
    }

    /// Total KV context touched by attention across the batch.
    #[must_use]
    pub fn total_context_tokens(&self) -> usize {
        self.seqs.iter().map(|s| s.context_len).sum()
    }

    /// True if no request contributes any token.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total_query_tokens() == 0
    }
}

/// Roofline cost model for one model on one hardware configuration.
///
/// # Examples
///
/// ```
/// use pensieve_model::{CostModel, HardwareSpec, ModelConfig};
///
/// let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
/// // Reusing a 4000-token cached history beats re-prefilling it.
/// let stateless = cost.prefill_time(4050, 0);
/// let stateful = cost.prefill_time(50, 4000);
/// assert!(stateful < stateless);
/// ```
#[derive(Debug, Clone)]
pub struct CostModel {
    cfg: ModelConfig,
    hw: HardwareSpec,
    /// How many times each activation byte crosses HBM per layer
    /// (reads + writes across the ~10 elementwise/GEMM kernels).
    act_io_factor: f64,
}

impl CostModel {
    /// Builds a cost model.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`ModelConfig::validate`] — constructing a cost
    /// model from an inconsistent architecture is a programmer error.
    #[must_use]
    pub fn new(cfg: ModelConfig, hw: HardwareSpec) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid model config: {e}");
        }
        CostModel {
            cfg,
            hw,
            act_io_factor: 8.0,
        }
    }

    /// The model configuration this cost model was built for.
    #[must_use]
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// The hardware specification this cost model was built for.
    #[must_use]
    pub fn hardware(&self) -> &HardwareSpec {
        &self.hw
    }

    /// Non-attention FLOPs per token per layer (projections + MLP).
    #[must_use]
    pub fn non_attention_flops_per_token_layer(&self) -> f64 {
        let h = self.cfg.hidden_size as f64;
        let kvh = self.cfg.kv_hidden() as f64;
        let ffn = self.cfg.ffn_hidden as f64;
        let qkv = 2.0 * h * (h + 2.0 * kvh);
        let out = 2.0 * h * h;
        let mlp = match self.cfg.family {
            ModelFamily::Opt => 2.0 * 2.0 * h * ffn,
            ModelFamily::Llama2 => 2.0 * 3.0 * h * ffn,
        };
        qkv + out + mlp
    }

    /// Bytes of weights read by one layer invocation (per GPU shard).
    #[must_use]
    fn layer_weight_bytes_per_gpu(&self) -> f64 {
        let h = self.cfg.hidden_size as f64;
        let kvh = self.cfg.kv_hidden() as f64;
        let ffn = self.cfg.ffn_hidden as f64;
        let mlp_mats = match self.cfg.family {
            ModelFamily::Opt => 2.0,
            ModelFamily::Llama2 => 3.0,
        };
        let params = h * h + 2.0 * h * kvh + h * h + mlp_mats * h * ffn;
        params * self.cfg.dtype_bytes as f64 / self.hw.num_gpus as f64
    }

    /// Time for the non-attention part of one layer on `tokens` batch
    /// tokens, excluding the fixed per-layer overhead.
    #[must_use]
    pub fn non_attention_layer_time(&self, tokens: usize) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let n = self.hw.num_gpus as f64;
        let flops = self.non_attention_flops_per_token_layer() * tokens as f64 / n;
        let act_bytes = tokens as f64
            * self.cfg.hidden_size as f64
            * self.cfg.dtype_bytes as f64
            * self.act_io_factor
            / n;
        let bytes = self.layer_weight_bytes_per_gpu() + act_bytes;
        let compute = flops / self.hw.gpu.effective_flops();
        let memory = bytes / self.hw.gpu.effective_bandwidth();
        let roofline = SimDuration::from_secs(compute.max(memory));
        roofline + self.tp_allreduce_per_layer(tokens)
    }

    /// Time for the two tensor-parallel all-reduces per layer.
    #[must_use]
    fn tp_allreduce_per_layer(&self, tokens: usize) -> SimDuration {
        if self.hw.num_gpus <= 1 {
            return SimDuration::ZERO;
        }
        let bytes = tokens * self.cfg.hidden_size * self.cfg.dtype_bytes;
        self.hw.interconnect.allreduce_time(bytes, self.hw.num_gpus) * 2.0
    }

    /// Time for the attention operator of one layer for one request shape.
    ///
    /// This is the quantity the paper's Figure 4 plots (before
    /// normalization): it grows linearly in `context_len`.
    #[must_use]
    pub fn attention_layer_time(&self, shape: SeqShape) -> SimDuration {
        if shape.query_len == 0 {
            return SimDuration::ZERO;
        }
        debug_assert!(shape.context_len >= shape.query_len);
        let n = self.hw.num_gpus as f64;
        let h = self.cfg.hidden_size as f64;
        let s = shape.query_len as f64;
        let l = shape.context_len as f64;
        // Causal attention: query token i attends to (l - s + i + 1) keys;
        // summing over the chunk gives s*l - s(s-1)/2 scored pairs.
        let pairs = s * l - s * (s - 1.0) / 2.0;
        let flops = 4.0 * pairs * h / n;
        let kv_bytes = l * 2.0 * self.cfg.kv_hidden() as f64 * self.cfg.dtype_bytes as f64 / n;
        let qo_bytes = s * 2.0 * h * self.cfg.dtype_bytes as f64 / n;
        let compute = flops / self.hw.gpu.effective_flops();
        let memory = (kv_bytes + qo_bytes) / self.hw.gpu.effective_bandwidth();
        SimDuration::from_secs(compute.max(memory))
    }

    /// Attention time for one shape across all layers.
    #[must_use]
    pub fn attention_time(&self, shape: SeqShape) -> SimDuration {
        self.attention_layer_time(shape) * self.cfg.num_layers as f64
    }

    /// Non-attention time for `tokens` batch tokens across all layers,
    /// including per-layer overhead and the LM head for `sampled` tokens.
    #[must_use]
    pub fn non_attention_time(&self, tokens: usize, sampled: usize) -> SimDuration {
        if tokens == 0 {
            return SimDuration::ZERO;
        }
        let per_layer = self.non_attention_layer_time(tokens) + self.hw.gpu.layer_overhead;
        per_layer * self.cfg.num_layers as f64 + self.lm_head_time(sampled)
    }

    /// Time to compute output logits for `sampled` tokens.
    #[must_use]
    pub fn lm_head_time(&self, sampled: usize) -> SimDuration {
        if sampled == 0 {
            return SimDuration::ZERO;
        }
        let n = self.hw.num_gpus as f64;
        let flops =
            2.0 * sampled as f64 * self.cfg.hidden_size as f64 * self.cfg.vocab_size as f64 / n;
        let weight_bytes =
            self.cfg.hidden_size as f64 * self.cfg.vocab_size as f64 * self.cfg.dtype_bytes as f64
                / n;
        let compute = flops / self.hw.gpu.effective_flops();
        let memory = weight_bytes / self.hw.gpu.effective_bandwidth();
        SimDuration::from_secs(compute.max(memory))
    }

    /// Execution time of one batched model invocation.
    ///
    /// `sampled` is the number of tokens whose logits are computed: one per
    /// request in the batch (the last prompt token for prefills, the single
    /// new token for decodes).
    #[must_use]
    pub fn batch_step_time(&self, batch: &BatchShape) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        let tokens = batch.total_query_tokens();
        let attn_per_layer: SimDuration = batch
            .seqs
            .iter()
            .filter(|s| s.query_len > 0)
            .map(|&s| self.attention_layer_time(s))
            .sum();
        let per_layer =
            self.non_attention_layer_time(tokens) + attn_per_layer + self.hw.gpu.layer_overhead;
        per_layer * self.cfg.num_layers as f64 + self.lm_head_time(batch.seqs.len())
    }

    /// Convenience: full-prefill time for a prompt of `prompt_len` tokens
    /// with `prior_context` tokens already cached.
    #[must_use]
    pub fn prefill_time(&self, prompt_len: usize, prior_context: usize) -> SimDuration {
        self.batch_step_time(&BatchShape::new(vec![SeqShape::prefill(
            prompt_len,
            prior_context,
        )]))
    }

    /// Convenience: one decode step for a batch of requests with the given
    /// context lengths.
    #[must_use]
    pub fn decode_step_time(&self, context_lens: &[usize]) -> SimDuration {
        self.batch_step_time(&BatchShape::new(
            context_lens.iter().map(|&l| SeqShape::decode(l)).collect(),
        ))
    }

    /// The paper's per-chunk recomputation cost `Cost(s, l) =
    /// Cost_attention(s, l) + Cost_other(s)` (§4.3.1) for a chunk of `s`
    /// tokens whose last token sits at context position `l`.
    #[must_use]
    pub fn chunk_recompute_cost(&self, chunk_len: usize, context_len: usize) -> SimDuration {
        let attn = self.attention_time(SeqShape {
            query_len: chunk_len,
            context_len,
        });
        let other = self.non_attention_layer_time(chunk_len) * self.cfg.num_layers as f64;
        attn + other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hardware::HardwareSpec;

    fn opt13b() -> CostModel {
        CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1))
    }

    #[test]
    fn decode_step_is_weight_bound_for_small_batch() {
        let m = opt13b();
        let t1 = m.decode_step_time(&[128]);
        let t8 = m.decode_step_time(&[128; 8]);
        // Batching 8 decodes costs far less than 8x a single decode.
        assert!(t8.as_secs() < 2.0 * t1.as_secs(), "t1={t1} t8={t8}");
        // A single decode step of a 13B model on A100 is O(10ms).
        assert!(t1.as_millis() > 5.0 && t1.as_millis() < 50.0, "t1={t1}");
    }

    #[test]
    fn prefill_time_grows_with_prompt() {
        let m = opt13b();
        let t256 = m.prefill_time(256, 0);
        let t1024 = m.prefill_time(1024, 0);
        assert!(t1024.as_secs() > 2.0 * t256.as_secs());
        // 1K-token prefill of a 13B model is O(100ms).
        assert!(t1024.as_millis() > 30.0 && t1024.as_millis() < 500.0);
    }

    /// Figure 4: attention cost grows linearly with context size.
    #[test]
    fn attention_cost_linear_in_context() {
        let m = opt13b();
        let base = m.attention_layer_time(SeqShape {
            query_len: 32,
            context_len: 2048,
        });
        let doubled = m.attention_layer_time(SeqShape {
            query_len: 32,
            context_len: 4096,
        });
        let ratio = doubled / base;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
    }

    /// §4.3.1: leading chunks are cheaper to recompute than trailing ones.
    #[test]
    fn leading_chunks_cheaper_to_recompute() {
        let m = opt13b();
        let lead = m.chunk_recompute_cost(32, 64);
        let trail = m.chunk_recompute_cost(32, 8192);
        assert!(trail.as_secs() > lead.as_secs());
    }

    #[test]
    fn reusing_cache_beats_recompute() {
        let m = opt13b();
        // New 50-token prompt with 4000 tokens of history: stateless systems
        // prefill 4050 tokens, Pensieve prefills 50 on top of cache.
        let stateless = m.prefill_time(4050, 0);
        let stateful = m.prefill_time(50, 4000);
        assert!(stateless.as_secs() > 5.0 * stateful.as_secs());
    }

    #[test]
    fn unified_batch_cheaper_than_separate_invocations() {
        let m = opt13b();
        let prefill = SeqShape::prefill(200, 0);
        let decodes: Vec<SeqShape> = (0..16).map(|_| SeqShape::decode(512)).collect();
        let mut all = decodes.clone();
        all.push(prefill);
        let unified = m.batch_step_time(&BatchShape::new(all));
        let separate = m.batch_step_time(&BatchShape::new(vec![prefill]))
            + m.batch_step_time(&BatchShape::new(decodes));
        assert!(unified.as_secs() < separate.as_secs());
    }

    #[test]
    fn tensor_parallelism_speeds_up_but_sublinearly() {
        let cfg = ModelConfig::opt_66b();
        let m1 = CostModel::new(cfg.clone(), HardwareSpec::azure_nc_a100(1));
        let m4 = CostModel::new(cfg, HardwareSpec::azure_nc_a100(4));
        let t1 = m1.prefill_time(1024, 0);
        let t4 = m4.prefill_time(1024, 0);
        let speedup = t1 / t4;
        assert!(speedup > 2.0 && speedup < 4.0, "speedup {speedup}");
    }

    #[test]
    fn empty_batch_costs_nothing() {
        let m = opt13b();
        assert_eq!(m.batch_step_time(&BatchShape::default()), SimDuration::ZERO);
        assert_eq!(m.non_attention_time(0, 0), SimDuration::ZERO);
        assert_eq!(m.lm_head_time(0), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid model config")]
    fn rejects_invalid_config() {
        let mut cfg = ModelConfig::opt_13b();
        cfg.head_dim = 7;
        let _ = CostModel::new(cfg, HardwareSpec::azure_nc_a100(1));
    }

    /// GQA reduces attention KV traffic: Llama 2-13B decode attention is
    /// cheaper than OPT-13B at the same context length.
    #[test]
    fn gqa_reduces_decode_attention_cost() {
        let opt = opt13b();
        let llama = CostModel::new(ModelConfig::llama2_13b(), HardwareSpec::azure_nc_a100(1));
        let shape = SeqShape::decode(8192);
        assert!(
            llama.attention_layer_time(shape).as_secs() < opt.attention_layer_time(shape).as_secs()
        );
    }
}
