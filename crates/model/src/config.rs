//! Transformer architecture configurations (paper Table 1).
//!
//! A [`ModelConfig`] captures everything the cost model and the functional
//! kernels need to know about a model: layer counts, hidden sizes, the
//! query/KV head split (Grouped-Query Attention), the feed-forward shape,
//! and the numeric precision. Constructors are provided for the four
//! configurations evaluated in the paper plus tiny configurations used by
//! the functional (real-math) tests.

use serde::{Deserialize, Serialize};

/// Model family; determines feed-forward shape and positional scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModelFamily {
    /// OPT: GPT-3-like. Learned position embeddings, LayerNorm, ReLU,
    /// 2-matmul MLP with `ffn = 4 * hidden`.
    Opt,
    /// Llama 2: rotary embeddings, RMSNorm, SiLU, gated 3-matmul MLP.
    Llama2,
}

/// Position-embedding scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PositionEmbedding {
    /// Learned absolute position embeddings (OPT / GPT-3).
    Learned,
    /// Rotary position embeddings applied to Q and K (Llama 2).
    Rotary,
}

/// Normalization layer kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Norm {
    /// Standard LayerNorm with mean subtraction and bias.
    LayerNorm,
    /// Root-mean-square LayerNorm (no mean subtraction, no bias).
    RmsNorm,
}

/// Feed-forward activation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Activation {
    /// Rectified linear unit (OPT).
    Relu,
    /// Sigmoid-weighted linear unit, used in Llama 2's gated MLP.
    Silu,
}

/// Complete architecture description of a served model.
///
/// # Examples
///
/// ```
/// let cfg = pensieve_model::ModelConfig::opt_13b();
/// assert_eq!(cfg.num_layers, 40);
/// // One KV-token (K + V across all layers) of OPT-13B is 0.78 MiB in fp16.
/// assert_eq!(cfg.kv_bytes_per_token(), 2 * 40 * 5120 * 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable model name, e.g. `"OPT-13B"`.
    pub name: String,
    /// Model family (OPT or Llama 2).
    pub family: ModelFamily,
    /// Number of transformer layers.
    pub num_layers: usize,
    /// Model (embedding) dimension.
    pub hidden_size: usize,
    /// Number of query attention heads.
    pub num_heads: usize,
    /// Number of key/value heads (`< num_heads` under GQA).
    pub num_kv_heads: usize,
    /// Per-head dimension; `num_heads * head_dim == hidden_size`.
    pub head_dim: usize,
    /// Feed-forward inner dimension.
    pub ffn_hidden: usize,
    /// Vocabulary size (used for the LM head cost and raw-token storage).
    pub vocab_size: usize,
    /// Bytes per scalar for weights and KV cache (2 = fp16).
    pub dtype_bytes: usize,
    /// Positional scheme.
    pub position_embedding: PositionEmbedding,
    /// Normalization kind.
    pub norm: Norm,
    /// Activation function.
    pub activation: Activation,
    /// Number of GPUs the paper serves this model on (tensor parallelism).
    pub default_num_gpus: usize,
}

impl ModelConfig {
    /// OPT-13B (Table 1, column 1): 40 layers, hidden 5120, 40 heads, 1 GPU.
    #[must_use]
    pub fn opt_13b() -> Self {
        ModelConfig {
            name: "OPT-13B".to_owned(),
            family: ModelFamily::Opt,
            num_layers: 40,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 40,
            head_dim: 128,
            ffn_hidden: 4 * 5120,
            vocab_size: 50272,
            dtype_bytes: 2,
            position_embedding: PositionEmbedding::Learned,
            norm: Norm::LayerNorm,
            activation: Activation::Relu,
            default_num_gpus: 1,
        }
    }

    /// OPT-66B (Table 1, column 2): 64 layers, hidden 9216, 72 heads, 4 GPUs.
    #[must_use]
    pub fn opt_66b() -> Self {
        ModelConfig {
            name: "OPT-66B".to_owned(),
            family: ModelFamily::Opt,
            num_layers: 64,
            hidden_size: 9216,
            num_heads: 72,
            num_kv_heads: 72,
            head_dim: 128,
            ffn_hidden: 4 * 9216,
            vocab_size: 50272,
            dtype_bytes: 2,
            position_embedding: PositionEmbedding::Learned,
            norm: Norm::LayerNorm,
            activation: Activation::Relu,
            default_num_gpus: 4,
        }
    }

    /// Llama 2-13B as evaluated in the paper (Table 1, column 3).
    ///
    /// The stock model uses 40 KV heads; the authors changed it to 10 to
    /// demonstrate Pensieve under Grouped-Query Attention (group size 4),
    /// and we reproduce that modification.
    #[must_use]
    pub fn llama2_13b() -> Self {
        ModelConfig {
            name: "Llama 2-13B".to_owned(),
            family: ModelFamily::Llama2,
            num_layers: 40,
            hidden_size: 5120,
            num_heads: 40,
            num_kv_heads: 10,
            head_dim: 128,
            ffn_hidden: 13824,
            vocab_size: 32000,
            dtype_bytes: 2,
            position_embedding: PositionEmbedding::Rotary,
            norm: Norm::RmsNorm,
            activation: Activation::Silu,
            default_num_gpus: 1,
        }
    }

    /// Llama 2-70B (Table 1, column 4): 80 layers, hidden 8192, GQA group 8,
    /// 4 GPUs.
    #[must_use]
    pub fn llama2_70b() -> Self {
        ModelConfig {
            name: "Llama 2-70B".to_owned(),
            family: ModelFamily::Llama2,
            num_layers: 80,
            hidden_size: 8192,
            num_heads: 64,
            num_kv_heads: 8,
            head_dim: 128,
            ffn_hidden: 28672,
            vocab_size: 32000,
            dtype_bytes: 2,
            position_embedding: PositionEmbedding::Rotary,
            norm: Norm::RmsNorm,
            activation: Activation::Silu,
            default_num_gpus: 4,
        }
    }

    /// A tiny Llama-style configuration for functional (real-math) tests.
    ///
    /// Small enough that naive attention over a few hundred tokens runs in
    /// microseconds, yet exercising every architectural feature Pensieve's
    /// kernels must support, including GQA (4 query heads per KV head).
    #[must_use]
    pub fn tiny_llama() -> Self {
        ModelConfig {
            name: "Tiny-Llama".to_owned(),
            family: ModelFamily::Llama2,
            num_layers: 2,
            hidden_size: 64,
            num_heads: 8,
            num_kv_heads: 2,
            head_dim: 8,
            ffn_hidden: 172,
            vocab_size: 128,
            dtype_bytes: 4,
            position_embedding: PositionEmbedding::Rotary,
            norm: Norm::RmsNorm,
            activation: Activation::Silu,
            default_num_gpus: 1,
        }
    }

    /// A tiny OPT-style configuration (multi-head attention, LayerNorm).
    #[must_use]
    pub fn tiny_opt() -> Self {
        ModelConfig {
            name: "Tiny-OPT".to_owned(),
            family: ModelFamily::Opt,
            num_layers: 2,
            hidden_size: 32,
            num_heads: 4,
            num_kv_heads: 4,
            head_dim: 8,
            ffn_hidden: 128,
            vocab_size: 128,
            dtype_bytes: 4,
            position_embedding: PositionEmbedding::Learned,
            norm: Norm::LayerNorm,
            activation: Activation::Relu,
            default_num_gpus: 1,
        }
    }

    /// All four paper configurations in Table 1 order.
    #[must_use]
    pub fn paper_models() -> Vec<ModelConfig> {
        vec![
            Self::opt_13b(),
            Self::opt_66b(),
            Self::llama2_13b(),
            Self::llama2_70b(),
        ]
    }

    /// Hidden size of the K (or V) projection: `num_kv_heads * head_dim`.
    #[must_use]
    pub fn kv_hidden(&self) -> usize {
        self.num_kv_heads * self.head_dim
    }

    /// GQA group size: query heads per KV head.
    ///
    /// # Panics
    ///
    /// Panics if `num_heads` is not a multiple of `num_kv_heads`; validated
    /// configurations never trigger this.
    #[must_use]
    pub fn gqa_group_size(&self) -> usize {
        assert_eq!(self.num_heads % self.num_kv_heads, 0);
        self.num_heads / self.num_kv_heads
    }

    /// Bytes to store one KV-token (K and V, across all layers).
    ///
    /// For OPT-13B in fp16 this is the paper's 0.78 MiB figure
    /// (`2 * 40 * 5120 * 2` bytes, §3.2).
    #[must_use]
    pub fn kv_bytes_per_token(&self) -> usize {
        2 * self.num_layers * self.kv_hidden() * self.dtype_bytes
    }

    /// Bytes of KV cache for one token on a single tensor-parallel shard.
    ///
    /// Tensor parallelism splits KV heads across GPUs, so each shard stores
    /// `1/num_gpus` of every token.
    #[must_use]
    pub fn kv_bytes_per_token_per_gpu(&self, num_gpus: usize) -> usize {
        self.kv_bytes_per_token() / num_gpus
    }

    /// Approximate parameter count (embeddings + transformer layers).
    #[must_use]
    pub fn param_count(&self) -> usize {
        let h = self.hidden_size;
        let kvh = self.kv_hidden();
        let attn = h * h + 2 * h * kvh + h * h; // Q, K, V, O projections.
        let mlp = match self.family {
            ModelFamily::Opt => 2 * h * self.ffn_hidden,
            ModelFamily::Llama2 => 3 * h * self.ffn_hidden, // Gate, up, down.
        };
        let per_layer = attn + mlp;
        let embeddings = self.vocab_size * h * 2; // Input + LM head.
        self.num_layers * per_layer + embeddings
    }

    /// Bytes of model weights in the configured precision.
    #[must_use]
    pub fn param_bytes(&self) -> usize {
        self.param_count() * self.dtype_bytes
    }

    /// Validates internal consistency (head split, GQA divisibility).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_heads * self.head_dim != self.hidden_size {
            return Err(format!(
                "{}: num_heads * head_dim = {} != hidden_size {}",
                self.name,
                self.num_heads * self.head_dim,
                self.hidden_size
            ));
        }
        if self.num_kv_heads == 0 || !self.num_heads.is_multiple_of(self.num_kv_heads) {
            return Err(format!(
                "{}: num_kv_heads {} must evenly divide num_heads {}",
                self.name, self.num_kv_heads, self.num_heads
            ));
        }
        if self.num_layers == 0 || self.dtype_bytes == 0 {
            return Err(format!("{}: degenerate layer count or dtype", self.name));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts every cell of the paper's Table 1.
    #[test]
    fn table1_hyper_parameters() {
        let rows: [(ModelConfig, usize, usize, usize, usize, usize, usize); 4] = [
            (ModelConfig::opt_13b(), 40, 5120, 40, 40, 128, 1),
            (ModelConfig::opt_66b(), 64, 9216, 72, 72, 128, 4),
            (ModelConfig::llama2_13b(), 40, 5120, 40, 10, 128, 1),
            (ModelConfig::llama2_70b(), 80, 8192, 64, 8, 128, 4),
        ];
        for (cfg, layers, hidden, heads, kv_heads, head_dim, gpus) in rows {
            assert_eq!(cfg.num_layers, layers, "{} layers", cfg.name);
            assert_eq!(cfg.hidden_size, hidden, "{} hidden", cfg.name);
            assert_eq!(cfg.num_heads, heads, "{} heads", cfg.name);
            assert_eq!(cfg.num_kv_heads, kv_heads, "{} kv heads", cfg.name);
            assert_eq!(cfg.head_dim, head_dim, "{} head size", cfg.name);
            assert_eq!(cfg.default_num_gpus, gpus, "{} gpus", cfg.name);
        }
    }

    #[test]
    fn all_configs_validate() {
        for cfg in ModelConfig::paper_models() {
            cfg.validate().unwrap();
        }
        ModelConfig::tiny_llama().validate().unwrap();
        ModelConfig::tiny_opt().validate().unwrap();
    }

    /// §3.2: a 13B GPT-3-style model stores 0.78 MB per KV-token.
    #[test]
    fn opt13b_kv_token_size_matches_paper() {
        let cfg = ModelConfig::opt_13b();
        assert_eq!(cfg.kv_bytes_per_token(), 819_200);
        let mb = cfg.kv_bytes_per_token() as f64 / (1024.0 * 1024.0);
        assert!((mb - 0.78125).abs() < 1e-6);
    }

    /// §6.2: GQA with group size 4 shrinks Llama 2-13B KV tokens 4x vs OPT-13B.
    #[test]
    fn gqa_reduces_kv_footprint() {
        let opt = ModelConfig::opt_13b();
        let llama = ModelConfig::llama2_13b();
        assert_eq!(llama.gqa_group_size(), 4);
        assert_eq!(opt.kv_bytes_per_token() / llama.kv_bytes_per_token(), 4);
        assert_eq!(ModelConfig::llama2_70b().gqa_group_size(), 8);
    }

    /// §6.3: OPT-13B -> OPT-66B grows params >5x but KV size only 2.88x.
    #[test]
    fn opt66b_scaling_ratios_match_paper() {
        let small = ModelConfig::opt_13b();
        let large = ModelConfig::opt_66b();
        let param_ratio = large.param_count() as f64 / small.param_count() as f64;
        assert!(param_ratio > 4.5, "param ratio {param_ratio}");
        let kv_ratio = large.kv_bytes_per_token() as f64 / small.kv_bytes_per_token() as f64;
        assert!((kv_ratio - 2.88).abs() < 0.01, "kv ratio {kv_ratio}");
    }

    #[test]
    fn param_counts_are_in_expected_range() {
        // Within ~15% of the nominal sizes (we ignore biases and norms).
        let approx = |cfg: &ModelConfig| cfg.param_count() as f64 / 1e9;
        assert!((approx(&ModelConfig::opt_13b()) - 13.0).abs() < 2.0);
        assert!((approx(&ModelConfig::opt_66b()) - 66.0).abs() < 8.0);
        assert!((approx(&ModelConfig::llama2_13b()) - 13.0).abs() < 2.0);
        assert!((approx(&ModelConfig::llama2_70b()) - 70.0).abs() < 8.0);
    }

    #[test]
    fn validate_rejects_bad_head_split() {
        let mut cfg = ModelConfig::opt_13b();
        cfg.head_dim = 100;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::llama2_13b();
        cfg.num_kv_heads = 7;
        assert!(cfg.validate().is_err());
        let mut cfg = ModelConfig::opt_13b();
        cfg.num_kv_heads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn tp_shards_kv_evenly() {
        let cfg = ModelConfig::llama2_70b();
        assert_eq!(
            cfg.kv_bytes_per_token_per_gpu(4) * 4,
            cfg.kv_bytes_per_token()
        );
    }
}
