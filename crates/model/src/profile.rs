//! Offline profiling of chunk recomputation cost (§4.3.1).
//!
//! Pensieve's eviction policy needs `Cost(l)`, the cost of recomputing a
//! fixed-size chunk of tokens whose context length is `l`. Profiling every
//! context size is infeasible, so — exactly as the paper does — we profile
//! context sizes that are powers of two and linearly interpolate between
//! them. The "measurement" source is pluggable: production code profiles
//! the [`CostModel`] (our stand-in for real hardware), tests can feed
//! arbitrary measured values.

use std::fmt;

use crate::cost::{CostModel, SeqShape};
use crate::time::SimDuration;

/// Error building a profiled cost table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProfileError {
    /// Fewer than two sample points were provided.
    TooFewPoints,
    /// Sample points were not strictly increasing in context length.
    Unsorted,
    /// A sampled cost was negative or non-finite.
    InvalidCost,
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::TooFewPoints => write!(f, "need at least two profile points"),
            ProfileError::Unsorted => {
                write!(f, "profile points must be strictly increasing in context")
            }
            ProfileError::InvalidCost => write!(f, "profiled cost must be finite and >= 0"),
        }
    }
}

impl std::error::Error for ProfileError {}

/// Piecewise-linear interpolation over `(x, seconds)` sample points.
#[derive(Debug, Clone, PartialEq)]
pub struct InterpolatedCost {
    points: Vec<(usize, f64)>,
}

impl InterpolatedCost {
    /// Builds an interpolator from sample points.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError`] if fewer than two points are given, the `x`
    /// values are not strictly increasing, or any cost is invalid.
    pub fn new(points: Vec<(usize, f64)>) -> Result<Self, ProfileError> {
        if points.len() < 2 {
            return Err(ProfileError::TooFewPoints);
        }
        if !points.windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(ProfileError::Unsorted);
        }
        if points.iter().any(|&(_, c)| !c.is_finite() || c < 0.0) {
            return Err(ProfileError::InvalidCost);
        }
        Ok(InterpolatedCost { points })
    }

    /// Evaluates the interpolant at `x`.
    ///
    /// Below the first sample the first value is returned; above the last
    /// sample the final segment is extrapolated (attention cost is linear in
    /// context, so linear extrapolation is exact in the tail).
    #[must_use]
    pub fn eval(&self, x: usize) -> f64 {
        let pts = &self.points;
        if x <= pts[0].0 {
            return pts[0].1;
        }
        let last = pts.len() - 1;
        // Find the segment containing x, or use the final one to extrapolate.
        let hi = pts.partition_point(|&(px, _)| px < x).min(last);
        let (x0, y0) = pts[hi - 1];
        let (x1, y1) = pts[hi];
        let t = (x as f64 - x0 as f64) / (x1 as f64 - x0 as f64);
        y0 + t * (y1 - y0)
    }

    /// The profiled sample points.
    #[must_use]
    pub fn points(&self) -> &[(usize, f64)] {
        &self.points
    }
}

/// Profiled recomputation-cost table for fixed-size chunks.
///
/// `chunk_cost(l)` implements the paper's simplified cost function
/// `Cost(l) = Cost_attention(l) + c` where `c` is the (context-independent)
/// non-attention cost of the chunk.
#[derive(Debug, Clone)]
pub struct ProfiledCostTable {
    chunk_len: usize,
    attention: InterpolatedCost,
    non_attention_const: SimDuration,
}

impl ProfiledCostTable {
    /// Profiles `cost` at power-of-two context sizes up to `max_context`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_len == 0` or `max_context < 2 * chunk_len`.
    #[must_use]
    pub fn profile(cost: &CostModel, chunk_len: usize, max_context: usize) -> Self {
        assert!(chunk_len > 0, "chunk_len must be positive");
        assert!(
            max_context >= 2 * chunk_len,
            "max_context too small to profile"
        );
        let mut points = Vec::new();
        let mut l = chunk_len.next_power_of_two().max(2);
        while l <= max_context {
            let attn = cost.attention_time(SeqShape {
                query_len: chunk_len.min(l),
                context_len: l,
            });
            points.push((l, attn.as_secs()));
            l *= 2;
        }
        let attention =
            InterpolatedCost::new(points).expect("power-of-two sweep yields valid points");
        let non_attention_const =
            cost.non_attention_layer_time(chunk_len) * cost.config().num_layers as f64;
        ProfiledCostTable {
            chunk_len,
            attention,
            non_attention_const,
        }
    }

    /// Builds a table from externally measured `(context, attention
    /// seconds)` samples and a measured non-attention constant.
    ///
    /// # Errors
    ///
    /// Propagates [`ProfileError`] from the interpolator.
    pub fn from_measurements(
        chunk_len: usize,
        attention_samples: Vec<(usize, f64)>,
        non_attention_const: SimDuration,
    ) -> Result<Self, ProfileError> {
        Ok(ProfiledCostTable {
            chunk_len,
            attention: InterpolatedCost::new(attention_samples)?,
            non_attention_const,
        })
    }

    /// The chunk size this table was profiled for.
    #[must_use]
    pub fn chunk_len(&self) -> usize {
        self.chunk_len
    }

    /// Interpolated attention cost for a chunk at context length `l`.
    #[must_use]
    pub fn attention_cost(&self, context_len: usize) -> SimDuration {
        SimDuration::from_secs(self.attention.eval(context_len).max(0.0))
    }

    /// Total recomputation cost `Cost(l) = Cost_attention(l) + c`.
    #[must_use]
    pub fn chunk_cost(&self, context_len: usize) -> SimDuration {
        self.attention_cost(context_len) + self.non_attention_const
    }

    /// The profiled non-attention constant `c`.
    #[must_use]
    pub fn non_attention_const(&self) -> SimDuration {
        self.non_attention_const
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::hardware::HardwareSpec;

    fn table() -> ProfiledCostTable {
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        ProfiledCostTable::profile(&cost, 32, 16384)
    }

    #[test]
    fn interpolation_matches_exact_at_sample_points() {
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        let t = table();
        for l in [64usize, 256, 4096, 16384] {
            let exact = cost
                .attention_time(SeqShape {
                    query_len: 32,
                    context_len: l,
                })
                .as_secs();
            let interp = t.attention_cost(l).as_secs();
            assert!(
                (interp - exact).abs() <= 1e-12 + exact * 1e-9,
                "l={l} exact={exact} interp={interp}"
            );
        }
    }

    #[test]
    fn interpolation_between_samples_is_close() {
        let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
        let t = table();
        for l in [96usize, 3000, 10000] {
            let exact = cost
                .attention_time(SeqShape {
                    query_len: 32,
                    context_len: l,
                })
                .as_secs();
            let interp = t.attention_cost(l).as_secs();
            let rel = (interp - exact).abs() / exact;
            assert!(rel < 0.35, "l={l} rel err {rel}");
        }
    }

    #[test]
    fn chunk_cost_monotone_in_context() {
        let t = table();
        let mut prev = SimDuration::ZERO;
        for l in (6..15).map(|p| 1usize << p) {
            let c = t.chunk_cost(l);
            assert!(c >= prev, "not monotone at l={l}");
            prev = c;
        }
    }

    #[test]
    fn chunk_cost_includes_constant() {
        let t = table();
        assert!(t.chunk_cost(64) >= t.non_attention_const());
        assert!(t.non_attention_const() > SimDuration::ZERO);
    }

    #[test]
    fn extrapolates_beyond_last_sample() {
        let t = table();
        let at_max = t.attention_cost(16384);
        let beyond = t.attention_cost(32768);
        assert!(beyond.as_secs() > 1.5 * at_max.as_secs());
    }

    #[test]
    fn from_measurements_validates() {
        assert_eq!(
            ProfiledCostTable::from_measurements(32, vec![(64, 1.0)], SimDuration::ZERO)
                .unwrap_err(),
            ProfileError::TooFewPoints
        );
        assert_eq!(
            ProfiledCostTable::from_measurements(32, vec![(64, 1.0), (64, 2.0)], SimDuration::ZERO)
                .unwrap_err(),
            ProfileError::Unsorted
        );
        assert_eq!(
            ProfiledCostTable::from_measurements(
                32,
                vec![(64, 1.0), (128, f64::NAN)],
                SimDuration::ZERO
            )
            .unwrap_err(),
            ProfileError::InvalidCost
        );
        let ok = ProfiledCostTable::from_measurements(
            32,
            vec![(64, 1.0), (128, 2.0)],
            SimDuration::from_millis(1.0),
        )
        .unwrap();
        assert_eq!(ok.attention_cost(96).as_secs(), 1.5);
    }

    #[test]
    fn eval_clamps_below_first_point() {
        let i = InterpolatedCost::new(vec![(64, 2.0), (128, 4.0)]).unwrap();
        assert_eq!(i.eval(10), 2.0);
        assert_eq!(i.eval(64), 2.0);
        assert_eq!(i.eval(128), 4.0);
        assert_eq!(i.eval(96), 3.0);
        // Linear extrapolation above.
        assert_eq!(i.eval(192), 6.0);
    }
}
