//! Model configurations and analytical hardware cost model for Pensieve.
//!
//! This crate provides the three ingredients every other crate in the
//! workspace builds on:
//!
//! 1. [`config`] — the transformer architecture hyper-parameters of the four
//!    models evaluated in the paper (Table 1): OPT-13B, OPT-66B,
//!    Llama 2-13B (with 10 KV heads, as modified by the authors) and
//!    Llama 2-70B, plus tiny configurations for functional tests.
//! 2. [`hardware`] — specifications of the simulated testbed: A100-80GB
//!    GPUs, the PCIe 4.0 host link (including the measured 18–20 %
//!    full-duplex contention penalty from §5 of the paper), NVLink for
//!    tensor-parallel all-reduce, and host memory capacity.
//! 3. [`cost`] — a roofline cost model mapping batch shapes to execution
//!    time, and [`profile`] — the offline profiling + power-of-two
//!    interpolation used by the eviction policy (§4.3.1).
//!
//! Simulated time is represented by the [`time::SimTime`] /
//! [`time::SimDuration`] newtypes shared across the workspace.

pub mod config;
pub mod cost;
pub mod hardware;
pub mod profile;
pub mod time;

pub use config::{Activation, ModelConfig, ModelFamily, Norm, PositionEmbedding};
pub use cost::{BatchShape, CostModel, SeqShape};
pub use hardware::{GpuSpec, HardwareSpec, InterconnectSpec, PcieSpec};
pub use profile::{InterpolatedCost, ProfiledCostTable};
pub use time::{SimDuration, SimTime};
