//! Simulated time: instants and durations as `f64` seconds.
//!
//! The discrete-event simulator and the cost model both deal in wall-clock
//! quantities that have no relation to the host's real clock, so we use
//! dedicated newtypes instead of [`std::time::Duration`]. An `f64` second
//! representation keeps arithmetic simple (rates, divisions by token counts)
//! while still offering ~microsecond precision over multi-day horizons.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of simulated time, in seconds.
///
/// Durations are always finite and non-negative; constructors debug-assert
/// this invariant.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `secs` is negative, NaN, or infinite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        SimDuration(secs)
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms * 1e-3)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub fn from_micros(us: f64) -> Self {
        Self::from_secs(us * 1e-6)
    }

    /// Returns the duration in seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns the duration in milliseconds.
    #[must_use]
    pub fn as_millis(self) -> f64 {
        self.0 * 1e3
    }

    /// Returns the duration in microseconds.
    #[must_use]
    pub fn as_micros(self) -> f64 {
        self.0 * 1e6
    }

    /// Returns the larger of two durations.
    #[must_use]
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    #[must_use]
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Subtracts `other`, clamping at zero instead of going negative.
    #[must_use]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration((self.0 - other.0).max(0.0))
    }

    /// Returns true if this is the zero duration.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if the result would be negative; use
    /// [`SimDuration::saturating_sub`] when underflow is expected.
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div<SimDuration> for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1.0 {
            write!(f, "{:.3}s", self.0)
        } else if self.0 >= 1e-3 {
            write!(f, "{:.3}ms", self.0 * 1e3)
        } else {
            write!(f, "{:.1}us", self.0 * 1e6)
        }
    }
}

/// An instant on the simulated clock, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates an instant from seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `secs` is negative, NaN, or infinite.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite() && secs >= 0.0, "invalid time {secs}");
        SimTime(secs)
    }

    /// Returns seconds since the epoch.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Total ordering over instants, delegating to [`f64::total_cmp`].
    /// Agrees with `partial_cmp` on the finite values [`SimTime`]
    /// constructors accept, but cannot fail, so ordered containers
    /// (event queues) need no panicking unwrap.
    #[must_use]
    pub fn total_cmp(&self, other: &SimTime) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is later than `self`.
    #[must_use]
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs(self.0 - earlier.0)
    }

    /// Returns the duration since `earlier`, or zero if `earlier` is later.
    #[must_use]
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_secs((self.0 - earlier.0).max(0.0))
    }

    /// Returns the later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_secs())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_secs();
    }
}

impl SubAssign<SimDuration> for SimTime {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.as_secs();
        debug_assert!(self.0 >= 0.0);
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(1.5);
        let b = SimDuration::from_micros(500.0);
        assert!((a + b).as_millis() - 2.0 < 1e-12);
        assert!(((a - b).as_millis() - 1.0).abs() < 1e-12);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert!((a * 2.0).as_millis() > 2.9);
        assert!((a / 3.0).as_micros() - 500.0 < 1e-9);
    }

    #[test]
    fn saturating_sub_clamps() {
        let a = SimDuration::from_secs(1.0);
        let b = SimDuration::from_secs(2.0);
        assert_eq!(a.saturating_sub(b), SimDuration::ZERO);
        assert_eq!(b.saturating_sub(a).as_secs(), 1.0);
    }

    #[test]
    fn time_advances() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_secs(3.0);
        assert_eq!(t.as_secs(), 3.0);
        assert_eq!(t.duration_since(SimTime::ZERO).as_secs(), 3.0);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t),
            SimDuration::ZERO
        );
    }

    #[test]
    fn ratio_of_durations() {
        let a = SimDuration::from_secs(3.0);
        let b = SimDuration::from_secs(1.5);
        assert_eq!(a / b, 2.0);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimDuration::from_secs(2.5)), "2.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(2.5)), "2.500ms");
        assert_eq!(format!("{}", SimDuration::from_micros(2.5)), "2.5us");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(f64::from(i))).sum();
        assert_eq!(total.as_secs(), 10.0);
    }
}
