//! Hardware specifications of the simulated testbed.
//!
//! The paper evaluates on Azure NC A100 v4 machines: up to four A100-80GB
//! GPUs, 220 GB of host memory per GPU, PCIe 4.0 host links, and NVLink
//! between GPUs. These types describe that hardware for the roofline cost
//! model ([`crate::cost`]) and the PCIe transfer model in `pensieve-sim`.
//!
//! Two empirical effects reported by the paper are modelled explicitly:
//!
//! * the 18–20 % throughput drop when PCIe runs full-duplex (§5,
//!   [`PcieSpec::duplex_penalty`]);
//! * each system is configured with a fixed 40 GB KV-cache budget per GPU
//!   (§6.1, [`HardwareSpec::gpu_kv_budget_bytes`]).

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// Compute and memory characteristics of one GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Peak dense fp16 throughput, FLOP/s (A100: 312e12).
    pub peak_flops: f64,
    /// Peak HBM bandwidth, bytes/s (A100-80GB: ~1.94e12).
    pub mem_bandwidth: f64,
    /// Fraction of peak FLOPs achievable by large GEMMs (model FLOPs
    /// utilization for compute-bound phases).
    pub compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth achievable by streaming kernels.
    pub bandwidth_efficiency: f64,
    /// Fixed overhead per transformer layer per kernel invocation
    /// (launch latency, synchronization).
    pub layer_overhead: SimDuration,
    /// Total GPU memory in bytes (A100-80GB).
    pub total_mem_bytes: usize,
}

impl GpuSpec {
    /// NVIDIA A100-80GB as deployed in Azure NC A100 v4.
    #[must_use]
    pub fn a100_80gb() -> Self {
        GpuSpec {
            peak_flops: 312e12,
            mem_bandwidth: 1.94e12,
            compute_efficiency: 0.55,
            bandwidth_efficiency: 0.80,
            layer_overhead: SimDuration::from_micros(15.0),
            total_mem_bytes: 80 * (1 << 30),
        }
    }

    /// Effective sustained FLOP/s for large matrix multiplications.
    #[must_use]
    pub fn effective_flops(&self) -> f64 {
        self.peak_flops * self.compute_efficiency
    }

    /// Effective sustained HBM bandwidth in bytes/s.
    #[must_use]
    pub fn effective_bandwidth(&self) -> f64 {
        self.mem_bandwidth * self.bandwidth_efficiency
    }
}

/// The host link used for GPU<->CPU KV-token swaps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PcieSpec {
    /// Effective unidirectional bandwidth, bytes/s (PCIe 4.0 x16: ~25 GB/s).
    pub bandwidth: f64,
    /// Per-transfer fixed latency (DMA setup, driver overhead).
    pub latency: SimDuration,
    /// Fractional throughput loss in *each* direction while both directions
    /// are active concurrently. The paper measured 18–20 % (§5); we use the
    /// midpoint.
    pub duplex_penalty: f64,
}

impl PcieSpec {
    /// PCIe 4.0 x16 with the paper's measured duplex contention.
    #[must_use]
    pub fn gen4_x16() -> Self {
        PcieSpec {
            bandwidth: 25e9,
            latency: SimDuration::from_micros(10.0),
            duplex_penalty: 0.19,
        }
    }

    /// Time to move `bytes` in one direction with the link otherwise idle.
    #[must_use]
    pub fn transfer_time(&self, bytes: usize) -> SimDuration {
        self.latency + SimDuration::from_secs(bytes as f64 / self.bandwidth)
    }

    /// Effective bandwidth while the opposite direction is also streaming.
    #[must_use]
    pub fn duplex_bandwidth(&self) -> f64 {
        self.bandwidth * (1.0 - self.duplex_penalty)
    }
}

/// GPU-to-GPU interconnect used by tensor-parallel all-reduce.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Per-GPU all-reduce bus bandwidth, bytes/s (NVLink 3: ~300e9 usable).
    pub bandwidth: f64,
    /// Fixed latency per collective operation.
    pub latency: SimDuration,
}

impl InterconnectSpec {
    /// NVLink 3 as in NC A100 v4 (4-GPU fully connected).
    #[must_use]
    pub fn nvlink3() -> Self {
        InterconnectSpec {
            bandwidth: 300e9,
            latency: SimDuration::from_micros(8.0),
        }
    }

    /// Time for a ring all-reduce of `bytes` across `n` GPUs.
    ///
    /// Uses the standard `2 (n-1) / n` traffic factor; returns zero for
    /// `n <= 1` (no communication needed).
    #[must_use]
    pub fn allreduce_time(&self, bytes: usize, n: usize) -> SimDuration {
        if n <= 1 {
            return SimDuration::ZERO;
        }
        let factor = 2.0 * (n as f64 - 1.0) / n as f64;
        self.latency + SimDuration::from_secs(bytes as f64 * factor / self.bandwidth)
    }
}

/// A complete serving machine: GPUs, host link, interconnect, host memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareSpec {
    /// Per-GPU compute/memory characteristics.
    pub gpu: GpuSpec,
    /// Host link for KV swapping.
    pub pcie: PcieSpec,
    /// GPU-to-GPU interconnect for tensor parallelism.
    pub interconnect: InterconnectSpec,
    /// Number of GPUs used (1 or 4 in the paper).
    pub num_gpus: usize,
    /// GPU memory reserved for the KV cache, per GPU (paper: 40 GB).
    pub gpu_kv_budget_bytes: usize,
    /// Host (CPU) memory available for the second-tier cache, per GPU
    /// (paper hardware: 220 GB per GPU).
    pub cpu_cache_bytes_per_gpu: usize,
}

impl HardwareSpec {
    /// The paper's single-GPU configuration (§6.1).
    #[must_use]
    pub fn azure_nc_a100(num_gpus: usize) -> Self {
        HardwareSpec {
            gpu: GpuSpec::a100_80gb(),
            pcie: PcieSpec::gen4_x16(),
            interconnect: InterconnectSpec::nvlink3(),
            num_gpus,
            gpu_kv_budget_bytes: 40 * (1 << 30),
            cpu_cache_bytes_per_gpu: 220 * (1 << 30),
        }
    }

    /// Total KV-cache budget across all GPUs.
    #[must_use]
    pub fn total_gpu_kv_budget(&self) -> usize {
        self.gpu_kv_budget_bytes * self.num_gpus
    }

    /// Total host cache capacity across all GPUs' NUMA shares.
    #[must_use]
    pub fn total_cpu_cache_bytes(&self) -> usize {
        self.cpu_cache_bytes_per_gpu * self.num_gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_effective_rates() {
        let gpu = GpuSpec::a100_80gb();
        assert!(gpu.effective_flops() > 1e14);
        assert!(gpu.effective_flops() < gpu.peak_flops);
        assert!(gpu.effective_bandwidth() < gpu.mem_bandwidth);
    }

    #[test]
    fn pcie_transfer_time_scales_linearly() {
        let pcie = PcieSpec::gen4_x16();
        let one = pcie.transfer_time(25_000_000);
        let two = pcie.transfer_time(50_000_000);
        // Twice the bytes is a bit less than twice the time (fixed latency).
        assert!(two.as_secs() < 2.0 * one.as_secs());
        assert!(two.as_secs() > 1.9 * one.as_secs());
        // 25 GB takes about a second.
        assert!((pcie.transfer_time(25_000_000_000).as_secs() - 1.0).abs() < 0.01);
    }

    /// §5: duplex transfers lose 18-20% in each direction.
    #[test]
    fn duplex_penalty_in_measured_band() {
        let pcie = PcieSpec::gen4_x16();
        let ratio = pcie.duplex_bandwidth() / pcie.bandwidth;
        assert!((0.80..=0.82).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn allreduce_zero_for_single_gpu() {
        let ic = InterconnectSpec::nvlink3();
        assert_eq!(ic.allreduce_time(1 << 20, 1), SimDuration::ZERO);
        let t4 = ic.allreduce_time(1 << 20, 4);
        let t2 = ic.allreduce_time(1 << 20, 2);
        // More GPUs move more total traffic per byte reduced.
        assert!(t4 > t2);
    }

    #[test]
    fn kv_budget_matches_eval_setup() {
        let hw = HardwareSpec::azure_nc_a100(4);
        assert_eq!(hw.gpu_kv_budget_bytes, 40 << 30);
        assert_eq!(hw.total_gpu_kv_budget(), 160 << 30);
        assert_eq!(hw.total_cpu_cache_bytes(), 880 << 30);
    }
}
