//! Criterion microbenchmarks of the four Figure-12 attention kernels.
//!
//! Run with `cargo bench -p pensieve-bench --bench attention`.

// Criterion's entry-point macro generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pensieve_kernels::attention::contiguous::fused_contiguous;
use pensieve_kernels::attention::copyout::copyout_attention;
use pensieve_kernels::attention::multi::{paged_multi_token, paged_multi_token_par};
use pensieve_kernels::attention::multiround::multi_round_single_token;
use pensieve_kernels::paged::gather_contiguous;
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

const BATCH: usize = 8;
const QUERY: usize = 8;
const HEADS: usize = 4;
const HEAD_DIM: usize = 64;
const BLOCK: usize = 16;

struct Setup {
    cfg: AttnConfig,
    pool: PagedKvCache,
    tables: Vec<BlockTable>,
    q: Matrix,
    context: usize,
}

fn setup(context: usize) -> Setup {
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = AttnConfig::new(HEADS, HEADS, HEAD_DIM);
    let layout = KvLayout {
        num_kv_heads: HEADS,
        head_dim: HEAD_DIM,
        block_size: BLOCK,
    };
    let mut pool = PagedKvCache::new(layout, 1, BATCH * context.div_ceil(BLOCK) + 1);
    let tf = layout.token_floats();
    let mut tables = Vec::new();
    for _ in 0..BATCH {
        let mut t = BlockTable::new(BLOCK);
        for _ in 0..context {
            let (b, s) = t.append_token(&mut pool).unwrap();
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        tables.push(t);
    }
    let q = Matrix::from_vec(
        BATCH * QUERY,
        cfg.q_width(),
        (0..BATCH * QUERY * cfg.q_width())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect(),
    );
    Setup {
        cfg,
        pool,
        tables,
        q,
        context,
    }
}

fn seqs(s: &Setup) -> Vec<AttnSeq<'_>> {
    (0..BATCH)
        .map(|i| AttnSeq {
            q_start: i * QUERY,
            q_len: QUERY,
            context_len: s.context,
            table: &s.tables[i],
        })
        .collect()
}

/// Benchmarks the four Figure-12 kernels at short and long (>= 2k token)
/// contexts.
fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig12_attention");
    for context in [256usize, 1024, 2048] {
        let s = setup(context);
        let layer = s.pool.layer(0);
        let sq = seqs(&s);
        group.bench_with_input(BenchmarkId::new("pensieve", context), &context, |b, _| {
            b.iter(|| black_box(paged_multi_token(&s.cfg, &s.q, &layer, &sq)));
        });
        group.bench_with_input(BenchmarkId::new("copyout", context), &context, |b, _| {
            b.iter(|| black_box(copyout_attention(&s.cfg, &s.q, &layer, &sq)));
        });
        group.bench_with_input(BenchmarkId::new("multiround", context), &context, |b, _| {
            b.iter(|| black_box(multi_round_single_token(&s.cfg, &s.q, &layer, &sq)));
        });
        // Ideal: contiguous KV prepared outside the measurement.
        let gathered: Vec<(Matrix, Matrix)> = s
            .tables
            .iter()
            .map(|t| gather_contiguous(&layer, t, context))
            .collect();
        let qs: Vec<Matrix> = (0..BATCH)
            .map(|i| {
                let mut m = Matrix::zeros(QUERY, s.cfg.q_width());
                for j in 0..QUERY {
                    m.row_mut(j).copy_from_slice(s.q.row(i * QUERY + j));
                }
                m
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("ideal", context), &context, |b, _| {
            b.iter(|| {
                for i in 0..BATCH {
                    black_box(fused_contiguous(
                        &s.cfg,
                        &qs[i],
                        &gathered[i].0,
                        &gathered[i].1,
                    ));
                }
            });
        });
    }
    group.finish();
}

/// Benchmarks the blocked, parallel, and multi-round kernels on a ragged
/// unified batch mixing decode (q_len 1), chunked prefill (8), and long
/// prefill (32) sub-requests — the §4.3 batch shape the multi-token
/// kernel exists for.
fn bench_ragged(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(11);
    let cfg = AttnConfig::new(HEADS, HEADS, HEAD_DIM);
    let layout = KvLayout {
        num_kv_heads: HEADS,
        head_dim: HEAD_DIM,
        block_size: BLOCK,
    };
    let q_lens: Vec<usize> = [1usize, 8, 32].iter().copied().cycle().take(9).collect();
    let context = 512usize;
    let mut pool = PagedKvCache::new(layout, 1, q_lens.len() * context.div_ceil(BLOCK) + 1);
    let tf = layout.token_floats();
    let mut tables = Vec::new();
    for _ in &q_lens {
        let mut t = BlockTable::new(BLOCK);
        for _ in 0..context {
            let (b, s) = t.append_token(&mut pool).unwrap();
            let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
            pool.write_token(0, b, s, &k, &v);
        }
        tables.push(t);
    }
    let rows: usize = q_lens.iter().sum();
    let q = Matrix::from_vec(
        rows,
        cfg.q_width(),
        (0..rows * cfg.q_width())
            .map(|_| rng.random_range(-1.0..1.0))
            .collect(),
    );
    let mut start = 0;
    let sq: Vec<AttnSeq<'_>> = q_lens
        .iter()
        .zip(&tables)
        .map(|(&q_len, table)| {
            let s = AttnSeq {
                q_start: start,
                q_len,
                context_len: context,
                table,
            };
            start += q_len;
            s
        })
        .collect();
    let layer = pool.layer(0);

    let mut group = c.benchmark_group("ragged_attention");
    group.bench_with_input(BenchmarkId::new("pensieve", 1), &1usize, |b, _| {
        b.iter(|| black_box(paged_multi_token(&cfg, &q, &layer, &sq)));
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("pensieve_par", threads),
            &threads,
            |b, &t| {
                b.iter(|| black_box(paged_multi_token_par(&cfg, &q, &layer, &sq, t)));
            },
        );
    }
    group.bench_with_input(BenchmarkId::new("multiround", 1), &1usize, |b, _| {
        b.iter(|| black_box(multi_round_single_token(&cfg, &q, &layer, &sq)));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels, bench_ragged
}
criterion_main!(benches);
