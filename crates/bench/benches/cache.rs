//! Criterion benchmarks of the tiered cache manager's hot paths.

// Criterion's entry-point macro generates undocumented items.
#![allow(missing_docs)]

use criterion::{criterion_group, criterion_main, Criterion};
use pensieve_kvcache::{CacheConfig, LruPolicy, SessionId, TieredKvCache};
use pensieve_model::SimTime;
use std::hint::black_box;

/// A cache populated with `n` conversations of 256 tokens each.
fn populated(n: usize) -> TieredKvCache {
    let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, n * 512, n * 512))
            .policy(Box::new(LruPolicy))
            .build();
    for i in 0..n {
        let conv = SessionId(i as u64);
        cache
            .append_tokens(conv, 256, SimTime::from_secs(i as f64))
            .unwrap();
        cache.unpin(conv);
    }
    cache
}

/// Benchmarks append, restore planning, and the swap-out pass.
fn bench_cache(c: &mut Criterion) {
    c.bench_function("append_decode_token", |b| {
        // Effectively unbounded capacity: criterion's warmup performs
        // millions of appends and must never exhaust the pool.
        let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, usize::MAX / 2, usize::MAX / 2))
            .policy(Box::new(LruPolicy))
            .build();
        let conv = SessionId(0);
        cache
            .append_tokens(conv, 256, SimTime::from_secs(0.0))
            .unwrap();
        b.iter(|| {
            cache
                .append_tokens(black_box(conv), 1, SimTime::from_secs(1000.0))
                .unwrap();
        });
    });

    c.bench_function("plan_restore_256_convs", |b| {
        let cache = populated(256);
        b.iter(|| black_box(cache.plan_restore(SessionId(17))));
    });

    c.bench_function("swap_out_pass_256_convs", |b| {
        b.iter_with_setup(
            || {
                let mut cache = TieredKvCache::builder(CacheConfig::for_test(32, 256 * 260, 256 * 512))
            .policy(Box::new(LruPolicy))
            .build();
                for i in 0..256usize {
                    let conv = SessionId(i as u64);
                    cache
                        .append_tokens(conv, 256, SimTime::from_secs(i as f64))
                        .unwrap();
                    cache.unpin(conv);
                }
                cache
            },
            |mut cache| {
                black_box(cache.maybe_swap_out(SimTime::from_secs(1e4)));
            },
        );
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache
}
criterion_main!(benches);
