//! Shared experiment harness for the paper's tables and figures.
//!
//! Each figure/table has a binary under `src/bin/` (run with
//! `cargo run --release -p pensieve-bench --bin <id>`); this library holds
//! the sweep machinery they share. Every binary prints a human-readable
//! table and writes machine-readable rows to `results/<id>.json`.
//!
//! Scale knobs (environment variables):
//!
//! * `PENSIEVE_DURATION` — seconds of simulated conversation arrivals per
//!   sweep point (default 400; larger = closer to steady state).
//! * `PENSIEVE_THREADS` — sweep-point parallelism (default: available
//!   cores).

use crossbeam::pool::Pool;
use pensieve_cluster::{Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineBuilder, EngineConfig, ServingBackend, SimServingEngine};
use pensieve_kvcache::CacheStats;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_obs::SharedRecorder;
use pensieve_workload::dataset::{Conversation, DatasetSpec};
use pensieve_workload::driver::{run_closed_loop, DriverConfig};
use pensieve_workload::metrics::LatencySummary;
use serde::Serialize;

/// One serving-sweep measurement point.
#[derive(Debug, Clone, Serialize)]
pub struct SweepPoint {
    /// Engine name.
    pub system: String,
    /// Model name.
    pub model: String,
    /// Dataset name.
    pub dataset: String,
    /// Offered request rate (requests/s).
    pub request_rate: f64,
    /// Mean user think time (s).
    pub think_time: f64,
    /// Steady-state summary.
    pub summary: LatencySummary,
    /// Cache hit statistics at the end of the run.
    pub cache: CacheRow,
}

/// Serializable extract of [`CacheStats`].
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    /// Overall history hit rate.
    pub hit_rate: f64,
    /// CPU-tier hit rate over non-GPU-resident tokens.
    pub cpu_hit_rate: f64,
    /// Tokens recomputed due to drops.
    pub recomputed_tokens: u64,
    /// Tokens swapped GPU->CPU.
    pub swapped_out_tokens: u64,
    /// Tokens swapped CPU->GPU.
    pub swapped_in_tokens: u64,
}

impl From<&CacheStats> for CacheRow {
    fn from(s: &CacheStats) -> Self {
        CacheRow {
            hit_rate: s.hit_rate(),
            cpu_hit_rate: s.cpu_hit_rate(),
            recomputed_tokens: s.recomputed_tokens,
            swapped_out_tokens: s.swapped_out_tokens,
            swapped_in_tokens: s.swapped_in_tokens,
        }
    }
}

/// Parameters for one serving sweep point.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Engine behaviour.
    pub engine: EngineConfig,
    /// Served model.
    pub model: ModelConfig,
    /// Hardware (GPU count etc.).
    pub hardware: HardwareSpec,
    /// Workload dataset.
    pub dataset: DatasetSpec,
    /// Offered request rate.
    pub request_rate: f64,
    /// Mean think time seconds.
    pub think_time: f64,
    /// Seed for workload + arrivals.
    pub seed: u64,
    /// System prompt length shared by every conversation (0 = none).
    pub system_prompt_tokens: usize,
}

/// Seconds of conversation arrivals simulated per point
/// (`PENSIEVE_DURATION`, default 400).
#[must_use]
pub fn sim_duration() -> f64 {
    std::env::var("PENSIEVE_DURATION")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400.0)
}

/// Number of worker threads for sweeps (`PENSIEVE_THREADS`).
#[must_use]
pub fn sweep_threads() -> usize {
    std::env::var("PENSIEVE_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, std::num::NonZero::get))
}

/// Generates the workload for a point: enough conversations to sustain the
/// offered rate for [`sim_duration`] seconds.
#[must_use]
pub fn workload_for(spec: &PointSpec) -> Vec<Conversation> {
    let conv_rate = spec.request_rate / spec.dataset.mean_turns;
    let n = (conv_rate * sim_duration()).ceil() as usize;
    spec.dataset.generate(n.max(50), spec.seed)
}

/// Builds the engine a sweep point runs on. Callers that need to attach
/// a trace recorder (`serve_sim --trace-out`) use [`engine_builder_for`]
/// instead and hand the result to [`run_point_on`].
#[must_use]
pub fn engine_for(spec: &PointSpec) -> SimServingEngine {
    engine_builder_for(spec).build()
}

/// The [`EngineBuilder`] for a sweep point, for callers that decorate
/// the engine (recorder, fault injector) before building.
#[must_use]
pub fn engine_builder_for(spec: &PointSpec) -> EngineBuilder {
    SimServingEngine::builder(
        spec.engine.clone(),
        spec.model.clone(),
        spec.hardware.clone(),
    )
}

/// Runs one sweep point to completion.
#[must_use]
pub fn run_point(spec: &PointSpec) -> SweepPoint {
    let mut engine = engine_for(spec);
    run_point_on(spec, &mut engine)
}

/// Builds an N-replica cluster router for a sweep point. When a recorder
/// is given, the router and every replica share it, producing one merged
/// event trace for the whole cluster.
#[must_use]
pub fn cluster_for(
    spec: &PointSpec,
    replicas: usize,
    policy: RouterPolicy,
    recorder: Option<SharedRecorder>,
) -> Router<SimServingEngine> {
    let fleet: Vec<SimServingEngine> = (0..replicas)
        .map(|_| {
            let mut b = engine_builder_for(spec);
            if let Some(rec) = recorder.clone() {
                b = b.recorder(rec);
            }
            b.build()
        })
        .collect();
    let mut router = Router::new(fleet, policy, RouterConfig::default());
    if let Some(rec) = recorder {
        router = router.recorder(rec);
    }
    router
}

/// The closed-loop driver configuration a sweep point runs under (the
/// arrival seed is decorrelated from the workload-generation seed).
#[must_use]
pub fn driver_for(spec: &PointSpec) -> DriverConfig {
    DriverConfig {
        request_rate: spec.request_rate,
        mean_think_time: spec.think_time,
        seed: spec.seed.wrapping_mul(2654435761).wrapping_add(1),
        system_prompt_tokens: spec.system_prompt_tokens,
    }
}

/// Runs one sweep point on a caller-provided backend (which must have
/// been built from the same spec for the labels to be honest) — a single
/// engine or a whole cluster router.
#[must_use]
pub fn run_point_on<B: ServingBackend>(spec: &PointSpec, engine: &mut B) -> SweepPoint {
    let convs = workload_for(spec);
    let result = run_closed_loop(engine, &convs, &driver_for(spec));
    SweepPoint {
        system: spec.engine.name.clone(),
        model: spec.model.name.clone(),
        dataset: spec.dataset.name.clone(),
        request_rate: spec.request_rate,
        think_time: spec.think_time,
        summary: result.summary(),
        cache: CacheRow::from(&engine.cache_stats()),
    }
}

/// Runs many points in parallel (deterministic per point) on the
/// process-wide persistent pool, preserving input order in the output.
#[must_use]
pub fn run_sweep(specs: Vec<PointSpec>) -> Vec<SweepPoint> {
    let threads = sweep_threads().min(specs.len().max(1));
    let pool = Pool::global(threads);
    pool.map_partitions(specs.len(), |idx| {
        let point = run_point(&specs[idx]);
        eprintln!(
            "  [{}] {} {} {} rate={:.1}: p90={:.1}ms tp={:.2} req/s",
            idx,
            point.system,
            point.model,
            point.dataset,
            point.request_rate,
            point.summary.p90_normalized * 1e3,
            point.summary.throughput_rps
        );
        point
    })
}

/// Writes experiment rows as pretty JSON to `results/<name>.json`.
///
/// # Panics
///
/// Panics if the results directory cannot be created or written.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    std::fs::create_dir_all("results").expect("create results dir");
    let path = format!("results/{name}.json");
    let data = serde_json::to_string_pretty(value).expect("serialize results");
    std::fs::write(&path, data).expect("write results file");
    println!("\nwrote {path}");
}

/// Prints a simple fixed-width table.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let padded: Vec<String> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
            .collect();
        println!("  {}", padded.join("  "));
    };
    line(&headers.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_preserves_order_and_is_deterministic() {
        let spec = |rate: f64| PointSpec {
            engine: EngineConfig::pensieve(),
            model: ModelConfig::opt_13b(),
            hardware: HardwareSpec::azure_nc_a100(1),
            dataset: DatasetSpec::sharegpt(),
            request_rate: rate,
            think_time: 10.0,
            seed: 1,
            system_prompt_tokens: 0,
        };
        // Tiny duration for test speed.
        std::env::set_var("PENSIEVE_DURATION", "30");
        let a = run_sweep(vec![spec(0.5), spec(1.0)]);
        let b = run_sweep(vec![spec(0.5), spec(1.0)]);
        std::env::remove_var("PENSIEVE_DURATION");
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].request_rate, 0.5);
        assert_eq!(a[1].request_rate, 1.0);
        assert_eq!(a[0].summary, b[0].summary);
        assert_eq!(a[1].summary, b[1].summary);
    }
}
