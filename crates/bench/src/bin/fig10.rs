//! Figure 10: single-GPU serving — throughput vs p90 normalized latency.
//!
//! OPT-13B and Llama 2-13B on one A100, ShareGPT and UltraChat, for
//! Pensieve, Pensieve (GPU cache), vLLM, and TensorRT-LLM. Each point is a
//! closed-loop run at one offered request rate (think time 60 s).
//!
//! Scale with `PENSIEVE_DURATION` (seconds of arrivals per point).

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec, SweepPoint};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Figure 10: LLM serving performance on 1 GPU (sweep running)...\n");
    let mut specs = Vec::new();
    for model in [ModelConfig::opt_13b(), ModelConfig::llama2_13b()] {
        // GQA quadruples Llama's cached-token capacity, pushing its
        // saturation knee to higher request rates.
        let rates: &[f64] = if model.name.starts_with("OPT") {
            &[1.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0]
        } else {
            &[2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0, 20.0]
        };
        for dataset in [DatasetSpec::sharegpt(), DatasetSpec::ultrachat()] {
            for engine in EngineConfig::figure10_systems() {
                for &rate in rates {
                    specs.push(PointSpec {
                        engine: engine.clone(),
                        model: model.clone(),
                        hardware: HardwareSpec::azure_nc_a100(1),
                        dataset: dataset.clone(),
                        request_rate: rate,
                        think_time: 60.0,
                        seed: 42,
                        system_prompt_tokens: 0,
                    });
                }
            }
        }
    }
    let points = run_sweep(specs);
    report(&points);
    write_json("fig10", &points);
}

fn report(points: &[SweepPoint]) {
    for model in ["OPT-13B", "Llama 2-13B"] {
        for dataset in ["ShareGPT", "UltraChat"] {
            println!("\n--- {model} on {dataset} ---");
            let rows: Vec<Vec<String>> = points
                .iter()
                .filter(|p| p.model == model && p.dataset == dataset)
                .map(|p| {
                    vec![
                        p.system.clone(),
                        format!("{:.1}", p.request_rate),
                        format!("{:.2}", p.summary.throughput_rps),
                        format!("{:.1}", p.summary.p90_normalized * 1e3),
                        format!("{:.1}", p.summary.mean_normalized * 1e3),
                        format!("{:.0}%", p.cache.hit_rate * 100.0),
                    ]
                })
                .collect();
            print_table(
                &[
                    "system",
                    "offered req/s",
                    "tp (req/s)",
                    "p90 norm (ms/tok)",
                    "mean norm (ms/tok)",
                    "hit rate",
                ],
                &rows,
            );
            summarize_gain(points, model, dataset);
        }
    }
}

/// Reports max sustainable throughput at a latency cut, paper-style.
fn summarize_gain(points: &[SweepPoint], model: &str, dataset: &str) {
    let cut = 0.120; // 120 ms/token, as used for OPT-13B in §6.2.
    let best = |system: &str| -> f64 {
        points
            .iter()
            .filter(|p| {
                p.model == model
                    && p.dataset == dataset
                    && p.system == system
                    && p.summary.p90_normalized <= cut
            })
            .map(|p| p.summary.throughput_rps)
            .fold(0.0, f64::max)
    };
    let pensieve = best("Pensieve");
    let vllm = best("vLLM");
    let trt = best("TensorRT-LLM");
    if vllm > 0.0 && trt > 0.0 {
        println!(
            "  max throughput @ p90 <= 120 ms/token: Pensieve {:.2}, vLLM {:.2} ({:.2}x), TRT-LLM {:.2} ({:.2}x)",
            pensieve,
            vllm,
            pensieve / vllm,
            trt,
            pensieve / trt
        );
    }
}
