//! Ablation: eviction chunk size (the paper fixes 32 tokens, §4.3.1).
//!
//! Smaller chunks evict more precisely but make more decisions and more,
//! smaller PCIe transfers; larger chunks waste cache space and recompute
//! more than necessary. OPT-13B on ShareGPT at a rate with cache
//! pressure.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Ablation: eviction chunk size, OPT-13B, ShareGPT @ 6 req/s\n");
    let mut specs = Vec::new();
    for chunk in [8usize, 16, 32, 64, 128, 256] {
        let mut engine = EngineConfig::pensieve();
        engine.chunk_tokens = chunk;
        engine.name = format!("chunk={chunk}");
        specs.push(PointSpec {
            engine,
            model: ModelConfig::opt_13b(),
            hardware: HardwareSpec::azure_nc_a100(1),
            dataset: DatasetSpec::sharegpt(),
            request_rate: 6.0,
            think_time: 60.0,
            seed: 47,
            system_prompt_tokens: 0,
        });
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}%", p.cache.hit_rate * 100.0),
                p.cache.recomputed_tokens.to_string(),
                p.cache.swapped_out_tokens.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "hit rate",
            "recomputed",
            "swapped out",
        ],
        &rows,
    );
    write_json("ablate_chunk", &points);
}
