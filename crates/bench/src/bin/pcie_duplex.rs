//! §5 optimization: prioritize retrieval over eviction on the PCIe link.
//!
//! The paper measured an 18–20 % throughput drop in both directions when
//! transfers overlap, and therefore holds evictions back while swap-ins
//! are in flight. This experiment drives both link disciplines with
//! concurrent swap-in/swap-out streams and reports the retrieval
//! completion times — the quantity on a request's critical path.

use pensieve_bench::{print_table, write_json};
use pensieve_model::{PcieSpec, SimTime};
use pensieve_sim::{Direction, DuplexMode, PcieLink};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    swap_in_gb: f64,
    naive_retrieval_s: f64,
    priority_retrieval_s: f64,
    naive_eviction_s: f64,
    priority_eviction_s: f64,
}

fn main() {
    println!(
        "PCIe duplex ablation: naive full-duplex vs prioritize-retrieval (paper §5)\n\
         Concurrent streams: one swap-in and one equal-sized swap-out issued at t=0.\n"
    );
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for gb in [1.0f64, 2.0, 5.0, 10.0] {
        let bytes = (gb * 1e9) as usize;
        let run = |mode: DuplexMode| {
            let mut link = PcieLink::new(PcieSpec::gen4_x16(), mode);
            // A retrieval burst (a returning conversation swapping in) and
            // an ahead-of-time eviction contend for the link.
            let (_, h2d_end) = link.schedule(SimTime::ZERO, Direction::HostToDevice, bytes);
            let (_, d2h_end) = link.schedule(SimTime::ZERO, Direction::DeviceToHost, bytes);
            (h2d_end.as_secs(), d2h_end.as_secs())
        };
        let (naive_in, naive_out) = run(DuplexMode::Naive);
        let (prio_in, prio_out) = run(DuplexMode::PrioritizeRetrieval);
        rows.push(vec![
            format!("{gb:.0}"),
            format!("{naive_in:.3}"),
            format!("{prio_in:.3}"),
            format!("{naive_out:.3}"),
            format!("{prio_out:.3}"),
        ]);
        json.push(Row {
            swap_in_gb: gb,
            naive_retrieval_s: naive_in,
            priority_retrieval_s: prio_in,
            naive_eviction_s: naive_out,
            priority_eviction_s: prio_out,
        });
    }
    print_table(
        &[
            "GB each way",
            "retrieval naive (s)",
            "retrieval priority (s)",
            "eviction naive (s)",
            "eviction priority (s)",
        ],
        &rows,
    );
    let r = json.last().expect("rows");
    println!(
        "\nRetrieval speedup from prioritization: {:.0}% (paper's duplex penalty: 18-20%).\n\
         Eviction is delayed instead — harmless, because swap-out is ahead-of-time.",
        (r.naive_retrieval_s / r.priority_retrieval_s - 1.0) * 100.0
    );
    write_json("pcie_duplex", &json);
}
