//! Ablation: suspension victim selection under GPU memory pressure.
//!
//! §4.3.5 suspends requests in descending arrival order (newest first).
//! This sweep compares that choice against oldest-first and
//! largest-context-first on a memory-starved configuration (8 GB KV
//! budget instead of 40 GB) where decode growth regularly outruns the
//! cache.

use pensieve_bench::{print_table, write_json, PointSpec};
use pensieve_core::config::SuspendPolicy;
use pensieve_core::{EngineConfig, SimServingEngine};
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop, DriverConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    policy: String,
    rate: f64,
    throughput_rps: f64,
    p90_ms: f64,
    suspensions: u64,
}

fn main() {
    println!("Ablation: suspension policy, OPT-13B with an 8 GB KV budget, ShareGPT\n");
    let mut hw = HardwareSpec::azure_nc_a100(1);
    hw.gpu_kv_budget_bytes = 8 << 30;
    let policies = [
        (SuspendPolicy::NewestFirst, "newest-first (paper)"),
        (SuspendPolicy::OldestFirst, "oldest-first"),
        (SuspendPolicy::LargestContext, "largest-context"),
    ];
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for (policy, name) in policies {
        for rate in [2.0f64, 4.0, 6.0] {
            let mut engine_cfg = EngineConfig::pensieve();
            engine_cfg.suspend_policy = policy;
            engine_cfg.name = name.to_owned();
            let spec = PointSpec {
                engine: engine_cfg.clone(),
                model: ModelConfig::opt_13b(),
                hardware: hw.clone(),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 52,
                system_prompt_tokens: 0,
            };
            let convs = pensieve_bench::workload_for(&spec);
            let mut engine =
                SimServingEngine::builder(engine_cfg, spec.model.clone(), hw.clone()).build();
            let result = run_closed_loop(
                &mut engine,
                &convs,
                &DriverConfig {
                    request_rate: rate,
                    mean_think_time: 60.0,
                    seed: 52,
                    system_prompt_tokens: 0,
                },
            );
            let s = result.summary();
            eprintln!(
                "  {name} rate={rate}: p90={:.1}ms susp={}",
                s.p90_normalized * 1e3,
                engine.counters().suspensions
            );
            rows.push(vec![
                name.to_owned(),
                format!("{rate:.0}"),
                format!("{:.2}", s.throughput_rps),
                format!("{:.1}", s.p90_normalized * 1e3),
                engine.counters().suspensions.to_string(),
            ]);
            json.push(Row {
                policy: name.to_owned(),
                rate,
                throughput_rps: s.throughput_rps,
                p90_ms: s.p90_normalized * 1e3,
                suspensions: engine.counters().suspensions,
            });
        }
    }
    print_table(
        &[
            "policy",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "suspensions",
        ],
        &rows,
    );
    write_json("ablate_suspension", &json);
}
