//! Table 1: hyper-parameters of the evaluated models.

use pensieve_bench::{print_table, write_json};
use pensieve_model::ModelConfig;

fn main() {
    println!("Table 1: Hyper-parameters for OPT and Llama 2 models\n");
    let models = ModelConfig::paper_models();
    type Field = fn(&ModelConfig) -> String;
    let rows: Vec<Vec<String>> = [
        (
            "# layer",
            (|m: &ModelConfig| m.num_layers.to_string()) as Field,
        ),
        ("# hidden", |m: &ModelConfig| m.hidden_size.to_string()),
        ("# head", |m: &ModelConfig| m.num_heads.to_string()),
        ("# KV head", |m: &ModelConfig| m.num_kv_heads.to_string()),
        ("Head size", |m: &ModelConfig| m.head_dim.to_string()),
        ("# GPU", |m: &ModelConfig| m.default_num_gpus.to_string()),
        ("KV bytes/token", |m: &ModelConfig| {
            format!(
                "{:.2} MiB",
                m.kv_bytes_per_token() as f64 / (1 << 20) as f64
            )
        }),
        ("~params", |m: &ModelConfig| {
            format!("{:.1}B", m.param_count() as f64 / 1e9)
        }),
    ]
    .iter()
    .map(|(name, f)| {
        let mut row = vec![(*name).to_owned()];
        row.extend(models.iter().map(f));
        row
    })
    .collect();

    let mut headers = vec!["Model"];
    let names: Vec<&str> = models.iter().map(|m| m.name.as_str()).collect();
    headers.extend(names);
    print_table(&headers, &rows);
    write_json("table1", &models);
}
