//! Figure 15: impact of user think time.
//!
//! Llama 2-13B on ShareGPT. Longer think times make cached KV-tokens age
//! out before reuse, shrinking Pensieve's edge; vLLM at 600 s is the
//! comparison point (§6.7).

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Figure 15: impact of user think time, Llama 2-13B, ShareGPT\n");
    // Think-time effects only materialize once enough conversations have
    // accumulated to pressure the CPU tier; default to a longer horizon
    // than the other sweeps (still overridable).
    if std::env::var("PENSIEVE_DURATION").is_err() {
        std::env::set_var("PENSIEVE_DURATION", "1200");
    }
    let rates = [2.0f64, 4.0, 6.0, 8.0, 10.0];
    let mut specs = Vec::new();
    for think in [60.0f64, 120.0, 300.0, 600.0] {
        for &rate in &rates {
            let mut engine = EngineConfig::pensieve();
            engine.name = format!("Pensieve (think {think:.0}s)");
            specs.push(PointSpec {
                engine,
                model: ModelConfig::llama2_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: think,
                seed: 46,
                system_prompt_tokens: 0,
            });
        }
    }
    for &rate in &rates {
        let mut engine = EngineConfig::vllm();
        engine.name = "vLLM (think 600s)".to_owned();
        specs.push(PointSpec {
            engine,
            model: ModelConfig::llama2_13b(),
            hardware: HardwareSpec::azure_nc_a100(1),
            dataset: DatasetSpec::sharegpt(),
            request_rate: rate,
            think_time: 600.0,
            seed: 46,
            system_prompt_tokens: 0,
        });
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.0}%", p.cache.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "system",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "hit rate",
        ],
        &rows,
    );
    write_json("fig15", &points);
}
