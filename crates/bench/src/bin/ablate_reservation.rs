//! Ablation: KV allocation discipline — ORCA-style max-length
//! reservation vs vLLM-style paged growth vs Pensieve.
//!
//! The paper's §2.2 background: FasterTransformer/ORCA reserve KV slots
//! for the maximum decoding length up front, wasting memory that paged
//! allocation (vLLM) reclaims, which in turn is the substrate Pensieve's
//! stateful cache builds on. This sweep quantifies the two steps on the
//! same workload.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Ablation: KV allocation discipline, OPT-13B, ShareGPT\n");
    let mut specs = Vec::new();
    for engine in [
        EngineConfig::orca(),
        EngineConfig::vllm(),
        EngineConfig::pensieve(),
    ] {
        for rate in [2.0f64, 4.0, 6.0, 8.0] {
            specs.push(PointSpec {
                engine: engine.clone(),
                model: ModelConfig::opt_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 51,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}", p.summary.mean_ttft * 1e3),
            ]
        })
        .collect();
    print_table(
        &[
            "discipline",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "mean ttft (ms)",
        ],
        &rows,
    );
    println!(
        "\nExpected ordering at load: ORCA-style < vLLM < Pensieve — paging\n\
         recovers the reserved-but-unused slots, statefulness then removes\n\
         the history recompute."
    );
    write_json("ablate_reservation", &points);
}
