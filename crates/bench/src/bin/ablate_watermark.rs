//! Ablation: ahead-of-time swap watermark and decode reserve.
//!
//! The paper fixes the swap trigger at 25 % free GPU slots (§4.3.2) and
//! reserves 10 % for running decodes (§4.3.5). This sweep shows the
//! trade-off: low watermarks evict too late (stalls), high ones evict
//! hot data; a small reserve causes suspensions, a large one wastes
//! capacity.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Ablation: swap watermark x decode reserve, OPT-13B, ShareGPT @ 6 req/s\n");
    let mut specs = Vec::new();
    for watermark in [0.05f64, 0.25, 0.50] {
        for reserve in [0.02f64, 0.10, 0.25] {
            let mut engine = EngineConfig::pensieve();
            engine.swap_watermark = watermark;
            engine.decode_reserve = reserve;
            engine.name = format!("wm={watermark:.2} rsv={reserve:.2}");
            specs.push(PointSpec {
                engine,
                model: ModelConfig::opt_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: 6.0,
                think_time: 60.0,
                seed: 48,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}", p.summary.mean_ttft * 1e3),
                format!("{:.1}%", p.cache.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "mean ttft (ms)",
            "hit rate",
        ],
        &rows,
    );
    write_json("ablate_watermark", &points);
}
