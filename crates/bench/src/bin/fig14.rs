//! Figure 14: retention-value eviction vs classic LRU.
//!
//! OPT-13B on ShareGPT. The policies only separate once CPU-cache
//! pressure forces drops (the paper observes divergence past ~3 req/s);
//! we report throughput/latency plus the §6.6 internals — CPU-tier hit
//! rate and recomputed-token counts.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::config::PolicyKind;
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Figure 14: eviction policy comparison, OPT-13B, ShareGPT\n");
    let rates = [1.0f64, 2.0, 3.0, 4.0, 6.0, 8.0];
    let mut lru = EngineConfig::pensieve_lru();
    lru.name = "Pensieve (LRU)".to_owned();
    let mut specs = Vec::new();
    for engine in [EngineConfig::pensieve(), lru] {
        assert!(matches!(
            engine.policy,
            PolicyKind::RetentionValue | PolicyKind::Lru
        ));
        for &rate in &rates {
            specs.push(PointSpec {
                engine: engine.clone(),
                model: ModelConfig::opt_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 45,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}%", p.cache.hit_rate * 100.0),
                format!("{:.1}%", p.cache.cpu_hit_rate * 100.0),
                p.cache.recomputed_tokens.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "hit rate",
            "cpu hit rate",
            "recomputed tokens",
        ],
        &rows,
    );
    // §6.6 deltas at the highest shared rate with pressure.
    for &rate in rates.iter().rev() {
        let at = |name: &str| {
            points
                .iter()
                .find(|p| p.system == name && p.request_rate == rate)
        };
        if let (Some(rv), Some(lru)) = (at("Pensieve"), at("Pensieve (LRU)")) {
            if lru.cache.recomputed_tokens > 0 {
                let delta_hit = (rv.cache.cpu_hit_rate - lru.cache.cpu_hit_rate) * 100.0;
                let delta_rec = 100.0
                    * (lru.cache.recomputed_tokens as f64 - rv.cache.recomputed_tokens as f64)
                    / lru.cache.recomputed_tokens as f64;
                println!(
                    "\nAt {rate} req/s: retention-value policy has {delta_hit:+.1} pp CPU hit rate and {delta_rec:.1}% fewer recomputed tokens than LRU\n(paper: up to +4.4 pp and -14.6%)."
                );
                break;
            }
        }
    }
    write_json("fig14", &points);
}
