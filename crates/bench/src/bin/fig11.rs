//! Figure 11: 4-GPU serving — OPT-66B and Llama 2-70B on ShareGPT.
//!
//! Larger models amplify Pensieve's advantage: compute grows faster than
//! KV size (§6.3), and Llama 2-70B's GQA (group 8) shrinks KV-tokens 8x.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Figure 11: LLM serving performance on 4 GPUs, ShareGPT (sweep running)...\n");
    let mut specs = Vec::new();
    for model in [ModelConfig::opt_66b(), ModelConfig::llama2_70b()] {
        // Llama 2-70B's GQA (group 8) supports far higher rates before its
        // KV capacity saturates.
        let rates: &[f64] = if model.name.starts_with("OPT") {
            &[1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 12.0]
        } else {
            &[1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0, 20.0]
        };
        for engine in EngineConfig::figure10_systems() {
            for &rate in rates {
                specs.push(PointSpec {
                    engine: engine.clone(),
                    model: model.clone(),
                    hardware: HardwareSpec::azure_nc_a100(4),
                    dataset: DatasetSpec::sharegpt(),
                    request_rate: rate,
                    think_time: 60.0,
                    seed: 43,
                    system_prompt_tokens: 0,
                });
            }
        }
    }
    let points = run_sweep(specs);
    for model in ["OPT-66B", "Llama 2-70B"] {
        println!("\n--- {model} on ShareGPT, 4x A100 ---");
        let rows: Vec<Vec<String>> = points
            .iter()
            .filter(|p| p.model == model)
            .map(|p| {
                vec![
                    p.system.clone(),
                    format!("{:.1}", p.request_rate),
                    format!("{:.2}", p.summary.throughput_rps),
                    format!("{:.1}", p.summary.p90_normalized * 1e3),
                    format!("{:.0}%", p.cache.hit_rate * 100.0),
                ]
            })
            .collect();
        print_table(
            &[
                "system",
                "offered req/s",
                "tp (req/s)",
                "p90 norm (ms/tok)",
                "hit rate",
            ],
            &rows,
        );
        // Paper cuts: 200 ms/token (OPT-66B), 400 ms/token (Llama 2-70B).
        let cut = if model == "OPT-66B" { 0.200 } else { 0.400 };
        let best = |system: &str| -> f64 {
            points
                .iter()
                .filter(|p| {
                    p.model == model && p.system == system && p.summary.p90_normalized <= cut
                })
                .map(|p| p.summary.throughput_rps)
                .fold(0.0, f64::max)
        };
        let (pv, vv, tv) = (best("Pensieve"), best("vLLM"), best("TensorRT-LLM"));
        if vv > 0.0 && tv > 0.0 {
            println!(
                "  max tp @ p90 <= {:.0} ms/token: Pensieve {:.2}, vLLM {:.2} ({:.2}x), TRT {:.2} ({:.2}x)",
                cut * 1e3,
                pv,
                vv,
                pv / vv,
                tv,
                pv / tv
            );
        }
    }
    write_json("fig11", &points);
}
