//! Ablation: Sarathi-style chunked prefill on top of Pensieve.
//!
//! Pensieve already shrinks prefills by serving history from cache, but
//! fresh conversations still bring multi-thousand-token prompts that
//! stall concurrent decodes for an iteration. Chunking bounds the
//! per-iteration prefill slice; this sweep quantifies the decode-latency
//! benefit and the TTFT cost.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Ablation: chunked prefill, Llama 2-13B, ShareGPT\n");
    let mut specs = Vec::new();
    let mut engines = vec![EngineConfig::pensieve()];
    for chunk in [256usize, 512, 1024, 2048] {
        engines.push(EngineConfig::pensieve_chunked_prefill(chunk));
    }
    for engine in engines {
        for rate in [4.0f64, 8.0, 12.0] {
            specs.push(PointSpec {
                engine: engine.clone(),
                model: ModelConfig::llama2_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 53,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p50_normalized * 1e3),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}", p.summary.mean_ttft * 1e3),
            ]
        })
        .collect();
    print_table(
        &[
            "config",
            "offered req/s",
            "tp (req/s)",
            "p50 norm (ms/tok)",
            "p90 norm (ms/tok)",
            "mean ttft (ms)",
        ],
        &rows,
    );
    write_json("ablate_chunked_prefill", &points);
}
