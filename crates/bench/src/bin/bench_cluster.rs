//! `bench_cluster` — multi-replica routing-policy comparison.
//!
//! Runs the same closed-loop workload against a 4-replica cluster under
//! each routing policy and reports cluster-wide cache effectiveness,
//! latency and migration activity. The cache-aware policy re-runs a
//! second time and the FNV-1a hash of the two event traces is compared,
//! pinning the cluster's bit-determinism in the committed results.
//!
//! ```text
//! cargo run --release -p pensieve-bench --bin bench_cluster
//! ```
//!
//! Writes `results/BENCH_cluster.json`.

use pensieve_bench::{cluster_for, driver_for, print_table, workload_for, write_json, PointSpec};
use pensieve_cluster::RouterPolicy;
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_obs::{to_jsonl, SharedRecorder};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::run_closed_loop;
use pensieve_workload::metrics::LatencySummary;
use serde::Serialize;

const REPLICAS: usize = 4;

#[derive(Debug, Serialize)]
struct ClusterRow {
    policy: String,
    replicas: usize,
    summary: LatencySummary,
    /// Context tokens (prompt + history) processed across every
    /// completed turn; by token conservation this is identical for every
    /// policy on the same workload.
    context_tokens: u64,
    /// Context tokens served from cache (GPU + CPU tiers) instead of
    /// being prefilled, summed over every completed turn.
    hit_tokens: u64,
    /// Cluster-wide KV hit-token rate: hit_tokens / context_tokens.
    hit_token_rate: f64,
    migrations: u64,
    migrated_tokens: u64,
    migration_lost_tokens: u64,
    trace_events: usize,
    /// FNV-1a hash of the run's JSONL event trace.
    trace_hash: String,
}

#[derive(Debug, Serialize)]
struct ClusterResults {
    replicas: usize,
    rows: Vec<ClusterRow>,
    /// Trace hash of the cache-aware re-run; determinism holds iff it
    /// equals the first cache-aware hash.
    cache_aware_rerun_hash: String,
    deterministic: bool,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn spec() -> PointSpec {
    PointSpec {
        engine: EngineConfig::pensieve(),
        model: ModelConfig::llama2_13b(),
        hardware: HardwareSpec::azure_nc_a100(ModelConfig::llama2_13b().default_num_gpus),
        dataset: DatasetSpec::sharegpt(),
        request_rate: 12.0,
        think_time: 60.0,
        seed: 42,
        system_prompt_tokens: 0,
    }
}

fn run_policy(policy: RouterPolicy) -> ClusterRow {
    let spec = spec();
    let recorder = SharedRecorder::new();
    let mut cluster = cluster_for(&spec, REPLICAS, policy, Some(recorder.clone()));
    let convs = workload_for(&spec);
    let result = run_closed_loop(&mut cluster, &convs, &driver_for(&spec));
    let hits: u64 = result
        .responses
        .iter()
        .map(|r| r.cached_history_tokens as u64)
        .sum();
    let context: u64 = hits
        + result
            .responses
            .iter()
            .map(|r| r.prefill_tokens as u64)
            .sum::<u64>();
    let events = recorder.take_events();
    let trace = to_jsonl(&events);
    ClusterRow {
        policy: policy.name().to_owned(),
        replicas: REPLICAS,
        summary: result.summary(),
        context_tokens: context,
        hit_tokens: hits,
        hit_token_rate: if context == 0 {
            1.0
        } else {
            hits as f64 / context as f64
        },
        migrations: cluster.migrations(),
        migrated_tokens: cluster.migrated_tokens(),
        migration_lost_tokens: cluster.migration_lost_tokens(),
        trace_events: events.len(),
        trace_hash: format!("{:016x}", fnv1a(trace.as_bytes())),
    }
}

fn main() {
    let policies = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastLoaded,
        RouterPolicy::CacheAware,
    ];
    let rows: Vec<ClusterRow> = policies.into_iter().map(run_policy).collect();
    let rerun = run_policy(RouterPolicy::CacheAware);
    let cache_aware = rows
        .iter()
        .find(|r| r.policy == "cache_aware")
        .expect("cache_aware row");
    let round_robin = rows
        .iter()
        .find(|r| r.policy == "round_robin")
        .expect("round_robin row");
    let deterministic = rerun.trace_hash == cache_aware.trace_hash;

    println!(
        "{REPLICAS}-replica cluster, {} on {}:",
        spec().model.name,
        spec().dataset.name
    );
    print_table(
        &[
            "policy",
            "hit rate",
            "hit tokens",
            "migrations",
            "p90 (ms/tok)",
            "req/s",
            "trace hash",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.1}%", r.hit_token_rate * 100.0),
                    r.hit_tokens.to_string(),
                    r.migrations.to_string(),
                    format!("{:.1}", r.summary.p90_normalized * 1e3),
                    format!("{:.2}", r.summary.throughput_rps),
                    r.trace_hash.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ncache-aware rerun hash {} -> deterministic: {deterministic}",
        rerun.trace_hash
    );
    assert!(
        cache_aware.hit_token_rate > round_robin.hit_token_rate,
        "cache-aware ({:.3}) must beat round-robin ({:.3}) on hit-token rate",
        cache_aware.hit_token_rate,
        round_robin.hit_token_rate
    );
    assert!(deterministic, "cluster trace must be bit-deterministic");

    let results = ClusterResults {
        replicas: REPLICAS,
        cache_aware_rerun_hash: rerun.trace_hash.clone(),
        deterministic,
        rows,
    };
    write_json("BENCH_cluster", &results);
}
