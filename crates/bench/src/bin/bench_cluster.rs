//! `bench_cluster` — multi-replica routing-policy comparison and
//! failover benchmark.
//!
//! Runs the same closed-loop workload against a 4-replica cluster under
//! each routing policy and reports cluster-wide cache effectiveness,
//! latency and migration activity. The cache-aware policy re-runs a
//! second time and the FNV-1a hash of the two event traces is compared,
//! pinning the cluster's bit-determinism in the committed results.
//!
//! A second scenario crashes a replica mid-conversation and compares the
//! orphaned turn's TTFT under recompute-from-scratch against streaming
//! KV replication at several lag settings (async thresholds and the
//! sync turn-commit barrier), each run twice to pin determinism.
//!
//! ```text
//! cargo run --release -p pensieve-bench --bin bench_cluster
//! ```
//!
//! Writes `results/BENCH_cluster.json` and `results/BENCH_failover.json`.

use pensieve_bench::{
    cluster_for, driver_for, engine_builder_for, print_table, workload_for, write_json, PointSpec,
};
use pensieve_cluster::{ReplicationConfig, ReplicationMode, Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_obs::{to_jsonl, SharedRecorder};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::run_closed_loop;
use pensieve_workload::metrics::LatencySummary;
use serde::Serialize;

const REPLICAS: usize = 4;

#[derive(Debug, Serialize)]
struct ClusterRow {
    policy: String,
    replicas: usize,
    summary: LatencySummary,
    /// Context tokens (prompt + history) processed across every
    /// completed turn; by token conservation this is identical for every
    /// policy on the same workload.
    context_tokens: u64,
    /// Context tokens served from cache (GPU + CPU tiers) instead of
    /// being prefilled, summed over every completed turn.
    hit_tokens: u64,
    /// Cluster-wide KV hit-token rate: hit_tokens / context_tokens.
    hit_token_rate: f64,
    migrations: u64,
    migrated_tokens: u64,
    migration_lost_tokens: u64,
    trace_events: usize,
    /// FNV-1a hash of the run's JSONL event trace.
    trace_hash: String,
}

#[derive(Debug, Serialize)]
struct ClusterResults {
    replicas: usize,
    rows: Vec<ClusterRow>,
    /// Trace hash of the cache-aware re-run; determinism holds iff it
    /// equals the first cache-aware hash.
    cache_aware_rerun_hash: String,
    deterministic: bool,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn spec() -> PointSpec {
    PointSpec {
        engine: EngineConfig::pensieve(),
        model: ModelConfig::llama2_13b(),
        hardware: HardwareSpec::azure_nc_a100(ModelConfig::llama2_13b().default_num_gpus),
        dataset: DatasetSpec::sharegpt(),
        request_rate: 12.0,
        think_time: 60.0,
        seed: 42,
        system_prompt_tokens: 0,
    }
}

fn run_policy(policy: RouterPolicy) -> ClusterRow {
    let spec = spec();
    let recorder = SharedRecorder::new();
    let mut cluster = cluster_for(&spec, REPLICAS, policy, Some(recorder.clone()));
    let convs = workload_for(&spec);
    let result = run_closed_loop(&mut cluster, &convs, &driver_for(&spec));
    let hits: u64 = result
        .responses
        .iter()
        .map(|r| r.cached_history_tokens as u64)
        .sum();
    let context: u64 = hits
        + result
            .responses
            .iter()
            .map(|r| r.prefill_tokens as u64)
            .sum::<u64>();
    let events = recorder.take_events();
    let trace = to_jsonl(&events);
    ClusterRow {
        policy: policy.name().to_owned(),
        replicas: REPLICAS,
        summary: result.summary(),
        context_tokens: context,
        hit_tokens: hits,
        hit_token_rate: if context == 0 {
            1.0
        } else {
            hits as f64 / context as f64
        },
        migrations: cluster.migrations(),
        migrated_tokens: cluster.migrated_tokens(),
        migration_lost_tokens: cluster.migration_lost_tokens(),
        trace_events: events.len(),
        trace_hash: format!("{:016x}", fnv1a(trace.as_bytes())),
    }
}

fn main() {
    let policies = [
        RouterPolicy::RoundRobin,
        RouterPolicy::LeastLoaded,
        RouterPolicy::CacheAware,
    ];
    let rows: Vec<ClusterRow> = policies.into_iter().map(run_policy).collect();
    let rerun = run_policy(RouterPolicy::CacheAware);
    let cache_aware = rows
        .iter()
        .find(|r| r.policy == "cache_aware")
        .expect("cache_aware row");
    let round_robin = rows
        .iter()
        .find(|r| r.policy == "round_robin")
        .expect("round_robin row");
    let deterministic = rerun.trace_hash == cache_aware.trace_hash;

    println!(
        "{REPLICAS}-replica cluster, {} on {}:",
        spec().model.name,
        spec().dataset.name
    );
    print_table(
        &[
            "policy",
            "hit rate",
            "hit tokens",
            "migrations",
            "p90 (ms/tok)",
            "req/s",
            "trace hash",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.policy.clone(),
                    format!("{:.1}%", r.hit_token_rate * 100.0),
                    r.hit_tokens.to_string(),
                    r.migrations.to_string(),
                    format!("{:.1}", r.summary.p90_normalized * 1e3),
                    format!("{:.2}", r.summary.throughput_rps),
                    r.trace_hash.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\ncache-aware rerun hash {} -> deterministic: {deterministic}",
        rerun.trace_hash
    );
    assert!(
        cache_aware.hit_token_rate > round_robin.hit_token_rate,
        "cache-aware ({:.3}) must beat round-robin ({:.3}) on hit-token rate",
        cache_aware.hit_token_rate,
        round_robin.hit_token_rate
    );
    assert!(deterministic, "cluster trace must be bit-deterministic");

    let results = ClusterResults {
        replicas: REPLICAS,
        cache_aware_rerun_hash: rerun.trace_hash.clone(),
        deterministic,
        rows,
    };
    write_json("BENCH_cluster", &results);

    run_failover_suite();
}

#[derive(Debug, Serialize)]
struct FailoverRow {
    mode: String,
    flush_threshold_tokens: usize,
    promotions: u64,
    replicated_tokens: u64,
    recomputed_suffix_tokens: u64,
    standby_bytes: u64,
    /// TTFT of the orphaned turn (first token minus *original* arrival):
    /// spans the crash, the promotion and whatever recompute remains.
    failover_ttft_seconds: f64,
    /// End-to-end latency of the orphaned turn.
    failover_latency_seconds: f64,
    /// Context tokens the orphan found cached at the survivor.
    cached_history_tokens: usize,
    /// Context tokens the orphan had to (re)prefill.
    prefill_tokens: usize,
    trace_events: usize,
    /// FNV-1a hash of the run's JSONL event trace.
    trace_hash: String,
}

fn failover_req(
    id: u64,
    conv: u64,
    at: SimTime,
    prompt: usize,
    out: usize,
    hist: usize,
) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("bench turns are non-empty")
}

fn drain_all(r: &mut Router<SimServingEngine>) -> Vec<pensieve_core::Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        r.run_until(r.now() + SimDuration::from_secs(1000.0));
        out.extend(r.drain_responses());
        if r.is_idle() {
            break;
        }
    }
    out
}

/// One failover run: a long-context conversation completes a turn on
/// replica 0 (giving replication something to stream), then replica 0
/// dies 200 ms into the follow-up turn. Reports the follow-up's TTFT and
/// how much context failover recomputed vs found replicated.
fn run_failover(mode: ReplicationMode, threshold: usize) -> FailoverRow {
    const PROMPT: usize = 3072;
    const OUT1: usize = 128;
    let spec = spec();
    let recorder = SharedRecorder::new();
    let fleet: Vec<SimServingEngine> = (0..2)
        .map(|_| engine_builder_for(&spec).recorder(recorder.clone()).build())
        .collect();
    let cfg = RouterConfig {
        replication: ReplicationConfig {
            mode,
            flush_threshold_tokens: threshold,
            ..ReplicationConfig::default()
        },
        ..RouterConfig::default()
    };
    let mut r = Router::new(fleet, RouterPolicy::CacheAware, cfg).recorder(recorder.clone());

    r.submit(failover_req(0, 1, SimTime::ZERO, PROMPT, OUT1, 0));
    let first = drain_all(&mut r);
    assert_eq!(first.len(), 1, "warm-up turn must complete");

    let t = r.now().as_secs() + 1.0;
    r.fail_replica_at(0, SimTime::from_secs(t + 0.2));
    r.submit(failover_req(
        1,
        1,
        SimTime::from_secs(t),
        64,
        256,
        PROMPT + OUT1,
    ));
    let done = drain_all(&mut r);
    assert_eq!(done.len(), 1, "orphaned turn must complete on the survivor");
    let resp = &done[0];
    assert_eq!(
        resp.arrival,
        SimTime::from_secs(t),
        "latency must span the failover (original arrival preserved)"
    );

    let events = recorder.take_events();
    let trace = to_jsonl(&events);
    let mode_name = match mode {
        ReplicationMode::Disabled => "disabled",
        ReplicationMode::Async => "async",
        ReplicationMode::Sync => "sync",
    };
    FailoverRow {
        mode: mode_name.to_owned(),
        flush_threshold_tokens: threshold,
        promotions: r.promotions(),
        replicated_tokens: r.replicated_tokens(),
        recomputed_suffix_tokens: r.recomputed_suffix_tokens(),
        standby_bytes: r.standby_bytes(),
        failover_ttft_seconds: resp.first_token.as_secs() - resp.arrival.as_secs(),
        failover_latency_seconds: resp.finish.as_secs() - resp.arrival.as_secs(),
        cached_history_tokens: resp.cached_history_tokens,
        prefill_tokens: resp.prefill_tokens,
        trace_events: events.len(),
        trace_hash: format!("{:016x}", fnv1a(trace.as_bytes())),
    }
}

#[derive(Debug, Serialize)]
struct FailoverResults {
    replicas: usize,
    scenario: String,
    rows: Vec<FailoverRow>,
    /// Trace hashes of the re-run of every row, in row order;
    /// determinism holds iff they match the first hashes pairwise.
    rerun_hashes: Vec<String>,
    deterministic: bool,
}

fn run_failover_suite() {
    let settings = [
        (ReplicationMode::Disabled, 0usize),
        (ReplicationMode::Async, 256),
        (ReplicationMode::Async, 32),
        (ReplicationMode::Sync, 64),
    ];
    let rows: Vec<FailoverRow> = settings.iter().map(|&(m, t)| run_failover(m, t)).collect();
    let rerun_hashes: Vec<String> = settings
        .iter()
        .map(|&(m, t)| run_failover(m, t).trace_hash)
        .collect();
    let deterministic = rows
        .iter()
        .zip(&rerun_hashes)
        .all(|(row, rerun)| &row.trace_hash == rerun);

    println!("\nfailover: replica crash 200ms into a follow-up turn (2 replicas):");
    print_table(
        &[
            "mode",
            "lag (tok)",
            "TTFT (s)",
            "latency (s)",
            "cached",
            "recomputed suffix",
            "trace hash",
        ],
        &rows
            .iter()
            .map(|row| {
                vec![
                    row.mode.clone(),
                    row.flush_threshold_tokens.to_string(),
                    format!("{:.3}", row.failover_ttft_seconds),
                    format!("{:.3}", row.failover_latency_seconds),
                    row.cached_history_tokens.to_string(),
                    row.recomputed_suffix_tokens.to_string(),
                    row.trace_hash.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let scratch = rows
        .iter()
        .find(|row| row.mode == "disabled")
        .expect("disabled row");
    for row in rows.iter().filter(|row| row.mode != "disabled") {
        assert!(
            row.failover_ttft_seconds < scratch.failover_ttft_seconds,
            "{} (lag {}) TTFT {:.3}s must beat recompute-from-scratch {:.3}s",
            row.mode,
            row.flush_threshold_tokens,
            row.failover_ttft_seconds,
            scratch.failover_ttft_seconds
        );
    }
    assert!(deterministic, "failover traces must be bit-deterministic");

    let results = FailoverResults {
        replicas: 2,
        scenario: "3072+128-token warm turn, replica crash 200ms into the 256-token follow-up"
            .to_owned(),
        rows,
        rerun_hashes,
        deterministic,
    };
    write_json("BENCH_failover", &results);
}
