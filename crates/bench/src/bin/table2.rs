//! Table 2: dataset statistics — paper values vs our synthetic generators.
//!
//! The paper's datasets have 48,159 (ShareGPT) and 1,468,352 (UltraChat)
//! conversations; we generate a scaled sample (the serving experiments
//! only ever consume a rate-dependent prefix) and compare the per-
//! conversation statistics that actually drive performance.

use pensieve_bench::{print_table, write_json};
use pensieve_workload::dataset::{DatasetSpec, DatasetStats};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    paper_turns: f64,
    measured_turns: f64,
    paper_input: f64,
    measured_input: f64,
    paper_output: f64,
    measured_output: f64,
}

fn main() {
    println!("Table 2: Dataset statistics (paper vs synthetic sample of 20k conversations)\n");
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for spec in [DatasetSpec::sharegpt(), DatasetSpec::ultrachat()] {
        let sample = spec.generate(20_000, 1234);
        let s = DatasetStats::measure(&sample);
        rows.push(vec![
            spec.name.clone(),
            format!("{:.2}", spec.mean_turns),
            format!("{:.2}", s.mean_turns),
            format!("{:.2}", spec.mean_input),
            format!("{:.2}", s.mean_input),
            format!("{:.2}", spec.mean_output),
            format!("{:.2}", s.mean_output),
        ]);
        json.push(Row {
            dataset: spec.name.clone(),
            paper_turns: spec.mean_turns,
            measured_turns: s.mean_turns,
            paper_input: spec.mean_input,
            measured_input: s.mean_input,
            paper_output: spec.mean_output,
            measured_output: s.mean_output,
        });
    }
    print_table(
        &[
            "Dataset",
            "turns (paper)",
            "turns (ours)",
            "input (paper)",
            "input (ours)",
            "output (paper)",
            "output (ours)",
        ],
        &rows,
    );
    println!("\n(Means drift slightly low vs paper because conversations are truncated at the 16,384-token context cap, as in §6.1.)");
    write_json("table2", &json);
}
