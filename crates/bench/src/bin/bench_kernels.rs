//! Persistent kernel-benchmark baseline: emits `BENCH_kernels.json`.
//!
//! Measures the cache-blocked attention and GEMM kernels on three unified
//! batch shapes — multi-token **prefill** (the Figure-12 configuration),
//! single-token **generation**, and a **ragged** batch mixing query lengths
//! 1/8/32 as produced by Pensieve's unified batching (§4.3) — and reports,
//! per workload:
//!
//! * wall time of the multi-round single-token straw-man (§3.2, pinned to
//!   the scalar reference kernel so this baseline never silently speeds up);
//! * wall time and tokens/s of the blocked kernel, plus its speedup over
//!   the straw-man;
//! * thread-scaling points for the pool-partitioned kernel against
//!   persistent [`Pool`] handles of width 1/2/4, each reporting wall time
//!   **and** the pool's modeled critical-path speedup;
//! * an in-run **bit-identity check** of every fast path against the scalar
//!   reference (the run aborts if any output differs).
//!
//! **Modeled speedup.** CI containers expose a single core, so
//! wall-clock cannot show thread scaling. The pool times every
//! partition of every batch; `sum(partition time) / max(partition
//! time)` — serial cost over critical-path cost — is the speedup an
//! unconstrained machine would see, measured (not extrapolated) from
//! the real partition split. A batch the work-size gate kept serial
//! never touches the pool and reports exactly 1.0 with
//! `serial_fallback: true`.
//!
//! The JSON snapshot is the trajectory later PRs must beat. Timings are
//! machine-dependent; the committed CI gate therefore compares only
//! *ratios* (speedups, modeled scaling) and the bit-identity flags,
//! never wall-clock.
//!
//! Usage: `bench_kernels [--smoke] [--out PATH] [--check BASELINE]`
//!
//! * `--smoke` shrinks every workload so the run finishes in seconds
//!   (used by CI; the committed smoke baseline lives in
//!   `results/BENCH_kernels_smoke.json`).
//! * `--out PATH` writes the report there (default `BENCH_kernels.json`).
//! * `--check BASELINE` re-reads the emitted report, validates it, and
//!   fails (exit 1) if any kernel lost more than 2x of the speedup
//!   recorded in `BASELINE`, any bit-identity flag is false, the
//!   prefill workload models below 2.5x at 4 threads, or any generation
//!   thread point models below 1.0x (the serial-fallback gate must keep
//!   small batches serial, never slower).
//!
//! [`Pool`]: crossbeam::pool::Pool

use std::process::ExitCode;
use std::time::Instant;

use crossbeam::pool::Pool;
use pensieve_kernels::attention::multi::{paged_multi_token, paged_multi_token_pool};
use pensieve_kernels::attention::multiround::multi_round_single_token;
use pensieve_kernels::attention::single::paged_single_token_batch;
use pensieve_kernels::ops::{matmul, matmul_pool, matmul_ref};
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

const HEADS: usize = 8;
const HEAD_DIM: usize = 64;
const BLOCK: usize = 16;
const THREAD_POINTS: [usize; 3] = [1, 2, 4];

/// Top-level report written to `BENCH_kernels.json`.
#[derive(Serialize, Deserialize)]
struct Report {
    /// Bumped when the layout of this file changes.
    schema_version: u64,
    /// True when produced by `--smoke` (shrunken workloads).
    smoke: bool,
    /// Cores visible to the producing machine (context for the thread
    /// scaling numbers; a 1-core container cannot scale).
    available_cores: usize,
    /// Attention workloads.
    attention: Vec<AttnRow>,
    /// GEMM workloads.
    gemm: Vec<GemmRow>,
}

/// One attention workload measurement.
#[derive(Serialize, Deserialize)]
struct AttnRow {
    /// Workload id (`prefill_fig12`, `generation`, `ragged`).
    name: String,
    /// Number of sequences in the unified batch.
    batch: usize,
    /// KV context length per sequence.
    context: usize,
    /// Total query tokens across the batch.
    query_tokens: usize,
    /// Multi-round single-token straw-man wall time.
    multiround_ms: f64,
    /// Blocked kernel wall time (single thread).
    blocked_ms: f64,
    /// Query tokens per second through the blocked kernel.
    tokens_per_s: f64,
    /// `multiround_ms / blocked_ms` — the headline ratio CI gates on.
    speedup_vs_multiround: f64,
    /// Pool-partitioned kernel at pool widths 1/2/4.
    threads_ms: Vec<ThreadPoint>,
    /// All fast paths matched the scalar reference bit-for-bit.
    bit_identical: bool,
}

/// One thread-scaling measurement against a persistent pool.
#[derive(Serialize, Deserialize)]
struct ThreadPoint {
    /// Width of the pool the kernel ran against.
    threads: usize,
    /// Wall time at that width (machine-dependent; not gated).
    ms: f64,
    /// Serial blocked time divided by this time (meaningless on a
    /// 1-core container; kept for context only).
    speedup_vs_serial: f64,
    /// Critical-path speedup measured by the pool: summed partition
    /// time over max partition time, from the pool's own per-batch
    /// accounting. 1.0 when the batch stayed serial. Machine-portable —
    /// this is what CI gates on.
    modeled_speedup: f64,
    /// True when the work-size gate kept every timed call off the pool
    /// (the pool's task counter never moved).
    serial_fallback: bool,
}

/// One GEMM workload measurement.
#[derive(Serialize, Deserialize)]
struct GemmRow {
    /// Workload id.
    name: String,
    /// Rows of A.
    m: usize,
    /// Shared dimension.
    k: usize,
    /// Columns of B.
    n: usize,
    /// Scalar reference wall time.
    ref_ms: f64,
    /// Cache-blocked kernel wall time.
    blocked_ms: f64,
    /// `ref_ms / blocked_ms` — gated by CI like the attention speedups.
    speedup_vs_ref: f64,
    /// Pool-partitioned GEMM at pool widths 1/2/4.
    threads_ms: Vec<ThreadPoint>,
    /// Blocked output matched the reference bit-for-bit.
    bit_identical: bool,
}

/// One warmup pass, then best of 3 (stable on a noisy CPU).
fn time_ms(mut f: impl FnMut()) -> f64 {
    f();
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

/// Times a pooled kernel at one pool width and reads the pool's own
/// per-batch partition accounting to derive the modeled critical-path
/// speedup for exactly the calls made inside the timing loop.
fn pool_point(threads: usize, serial_ms: f64, f: impl FnMut(&Pool)) -> ThreadPoint {
    let mut f = f;
    let pool = Pool::new(threads);
    let before = pool.stats();
    let ms = time_ms(|| f(&pool));
    let after = pool.stats();
    let serial_fallback = after.tasks_total == before.tasks_total;
    let critical = (after.modeled_critical - before.modeled_critical).as_secs_f64();
    let modeled_speedup = if serial_fallback || critical <= 0.0 {
        1.0
    } else {
        (after.modeled_serial - before.modeled_serial).as_secs_f64() / critical
    };
    ThreadPoint {
        threads,
        ms,
        speedup_vs_serial: serial_ms / ms,
        modeled_speedup,
        serial_fallback,
    }
}

/// A unified batch: paged KV pool plus per-sequence query spans.
struct Workload {
    name: &'static str,
    cfg: AttnConfig,
    pool: PagedKvCache,
    tables: Vec<BlockTable>,
    q: Matrix,
    q_lens: Vec<usize>,
    context: usize,
}

impl Workload {
    /// Builds `q_lens.len()` sequences, each with `context` KV tokens.
    fn new(name: &'static str, context: usize, q_lens: &[usize], rng: &mut StdRng) -> Self {
        let cfg = AttnConfig::new(HEADS, HEADS, HEAD_DIM);
        let layout = KvLayout {
            num_kv_heads: HEADS,
            head_dim: HEAD_DIM,
            block_size: BLOCK,
        };
        let blocks = q_lens.len() * context.div_ceil(BLOCK) + 1;
        let mut pool = PagedKvCache::new(layout, 1, blocks);
        let tf = layout.token_floats();
        let mut tables = Vec::with_capacity(q_lens.len());
        for _ in q_lens {
            let mut t = BlockTable::new(BLOCK);
            for _ in 0..context {
                let (b, s) = t.append_token(&mut pool).expect("sized pool");
                let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                pool.write_token(0, b, s, &k, &v);
            }
            tables.push(t);
        }
        let rows: usize = q_lens.iter().sum();
        let q = Matrix::from_vec(
            rows,
            cfg.q_width(),
            (0..rows * cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        Workload {
            name,
            cfg,
            pool,
            tables,
            q,
            q_lens: q_lens.to_vec(),
            context,
        }
    }

    fn seqs(&self) -> Vec<AttnSeq<'_>> {
        let mut start = 0;
        self.q_lens
            .iter()
            .zip(&self.tables)
            .map(|(&q_len, table)| {
                let s = AttnSeq {
                    q_start: start,
                    q_len,
                    context_len: self.context,
                    table,
                };
                start += q_len;
                s
            })
            .collect()
    }

    /// Measures this workload; aborts the process on any bit mismatch.
    fn run(&self) -> AttnRow {
        let layer = self.pool.layer(0);
        let seqs = self.seqs();
        let decode_only = self.q_lens.iter().all(|&l| l == 1);

        let reference = pensieve_kernels::attention::multi::paged_multi_token_ref(
            &self.cfg, &self.q, &layer, &seqs,
        );
        let blocked_out = if decode_only {
            paged_single_token_batch(&self.cfg, &self.q, &layer, &seqs)
        } else {
            paged_multi_token(&self.cfg, &self.q, &layer, &seqs)
        };
        let mut bit_identical = blocked_out == reference;
        for &t in &THREAD_POINTS {
            let pool = Pool::new(t);
            bit_identical &=
                paged_multi_token_pool(&self.cfg, &self.q, &layer, &seqs, &pool) == reference;
        }
        assert!(
            bit_identical,
            "{}: fast path diverged from scalar reference",
            self.name
        );

        let multiround_ms = time_ms(|| {
            std::hint::black_box(multi_round_single_token(&self.cfg, &self.q, &layer, &seqs));
        });
        let blocked_ms = if decode_only {
            time_ms(|| {
                std::hint::black_box(paged_single_token_batch(&self.cfg, &self.q, &layer, &seqs));
            })
        } else {
            time_ms(|| {
                std::hint::black_box(paged_multi_token(&self.cfg, &self.q, &layer, &seqs));
            })
        };
        let threads_ms = THREAD_POINTS
            .iter()
            .map(|&t| {
                pool_point(t, blocked_ms, |pool| {
                    std::hint::black_box(paged_multi_token_pool(
                        &self.cfg, &self.q, &layer, &seqs, pool,
                    ));
                })
            })
            .collect();
        let query_tokens: usize = self.q_lens.iter().sum();
        AttnRow {
            name: self.name.to_owned(),
            batch: self.q_lens.len(),
            context: self.context,
            query_tokens,
            multiround_ms,
            blocked_ms,
            tokens_per_s: query_tokens as f64 / (blocked_ms / 1e3),
            speedup_vs_multiround: multiround_ms / blocked_ms,
            threads_ms,
            bit_identical,
        }
    }
}

/// Measures one GEMM shape; aborts the process on any bit mismatch.
fn run_gemm(name: &'static str, m: usize, k: usize, n: usize, rng: &mut StdRng) -> GemmRow {
    let a = Matrix::from_vec(
        m,
        k,
        (0..m * k).map(|_| rng.random_range(-1.0..1.0)).collect(),
    );
    let b = Matrix::from_vec(
        k,
        n,
        (0..k * n).map(|_| rng.random_range(-1.0..1.0)).collect(),
    );
    let reference = matmul_ref(&a, &b);
    let mut bit_identical = matmul(&a, &b) == reference;
    for &t in &THREAD_POINTS {
        let pool = Pool::new(t);
        bit_identical &= matmul_pool(&a, &b, &pool) == reference;
    }
    assert!(
        bit_identical,
        "{name}: blocked GEMM diverged from reference"
    );
    let ref_ms = time_ms(|| {
        std::hint::black_box(matmul_ref(&a, &b));
    });
    let blocked_ms = time_ms(|| {
        std::hint::black_box(matmul(&a, &b));
    });
    let threads_ms = THREAD_POINTS
        .iter()
        .map(|&t| {
            pool_point(t, blocked_ms, |pool| {
                std::hint::black_box(matmul_pool(&a, &b, pool));
            })
        })
        .collect();
    GemmRow {
        name: name.to_owned(),
        m,
        k,
        n,
        ref_ms,
        blocked_ms,
        speedup_vs_ref: ref_ms / blocked_ms,
        threads_ms,
        bit_identical,
    }
}

/// Validates `report` against a committed `baseline` using only
/// machine-portable criteria. Returns the list of violations.
fn check_against(report: &Report, baseline: &Report) -> Vec<String> {
    let mut bad = Vec::new();
    for row in &report.attention {
        if !row.bit_identical {
            bad.push(format!("attention/{}: not bit-identical", row.name));
        }
        // Absolute thread-scaling gates, machine-portable because the
        // modeled speedup comes from the pool's partition accounting.
        if row.name.starts_with("prefill") {
            for p in row.threads_ms.iter().filter(|p| p.threads >= 4) {
                if p.modeled_speedup < 2.5 {
                    bad.push(format!(
                        "attention/{}: modeled speedup {:.2}x at {} threads is below the 2.5x floor",
                        row.name, p.modeled_speedup, p.threads
                    ));
                }
            }
        }
        if row.name == "generation" {
            for p in &row.threads_ms {
                if p.modeled_speedup < 1.0 {
                    bad.push(format!(
                        "attention/{}: modeled speedup {:.2}x at {} threads regresses below \
                         serial — the work-size gate must keep generation batches serial",
                        row.name, p.modeled_speedup, p.threads
                    ));
                }
            }
        }
        if let Some(base) = baseline.attention.iter().find(|b| b.name == row.name) {
            let floor = base.speedup_vs_multiround / 2.0;
            if row.speedup_vs_multiround < floor {
                bad.push(format!(
                    "attention/{}: speedup {:.2}x regressed >2x vs baseline {:.2}x",
                    row.name, row.speedup_vs_multiround, base.speedup_vs_multiround
                ));
            }
        } else {
            bad.push(format!("attention/{}: missing from baseline", row.name));
        }
    }
    for row in &report.gemm {
        if !row.bit_identical {
            bad.push(format!("gemm/{}: not bit-identical", row.name));
        }
        if let Some(base) = baseline.gemm.iter().find(|b| b.name == row.name) {
            let floor = base.speedup_vs_ref / 2.0;
            if row.speedup_vs_ref < floor {
                bad.push(format!(
                    "gemm/{}: speedup {:.2}x regressed >2x vs baseline {:.2}x",
                    row.name, row.speedup_vs_ref, base.speedup_vs_ref
                ));
            }
        } else {
            bad.push(format!("gemm/{}: missing from baseline", row.name));
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_kernels.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!("unknown flag {other}; usage: bench_kernels [--smoke] [--out PATH] [--check BASELINE]");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(42);
    // The prefill workload must clear the attention work-size gate at
    // every thread point (so the modeled-scaling floor is exercised even
    // in smoke mode): 20 x 8 x 1024 x 512 = 84M units, 21M per partition
    // at 4 threads, above ATTN_MIN_PART_UNITS. The other smoke shapes
    // stay tiny — generation is *supposed* to fall back to serial.
    let (prefill_ctx, prefill_batch, gen_ctx, ragged_ctx, batch) = if smoke {
        (1024, 20, 128, 96, 4)
    } else {
        (1024, 32, 1024, 512, 32)
    };

    eprintln!("bench_kernels: prefill (fig12 config) ...");
    let prefill = Workload::new(
        "prefill_fig12",
        prefill_ctx,
        &vec![8; prefill_batch],
        &mut rng,
    )
    .run();
    eprintln!("bench_kernels: generation ...");
    let generation = Workload::new("generation", gen_ctx, &vec![1; batch], &mut rng).run();
    eprintln!("bench_kernels: ragged unified batch ...");
    let ragged_lens: Vec<usize> = [1usize, 8, 32]
        .iter()
        .copied()
        .cycle()
        .take(batch)
        .collect();
    let ragged = Workload::new("ragged", ragged_ctx, &ragged_lens, &mut rng).run();

    eprintln!("bench_kernels: GEMM ...");
    let gemm = if smoke {
        vec![run_gemm("proj_small", 32, 128, 128, &mut rng)]
    } else {
        vec![
            run_gemm("proj_prefill", 256, 512, 512, &mut rng),
            run_gemm("proj_decode", 32, 512, 512, &mut rng),
        ]
    };

    let report = Report {
        schema_version: 2,
        smoke,
        available_cores: std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        attention: vec![prefill, generation, ragged],
        gemm,
    };

    let print_points = |points: &[ThreadPoint]| {
        for p in points {
            println!(
                "                pool w={}: {:>8.2} ms  modeled {:.2}x{}",
                p.threads,
                p.ms,
                p.modeled_speedup,
                if p.serial_fallback {
                    "  (serial fallback)"
                } else {
                    ""
                }
            );
        }
    };
    for row in &report.attention {
        println!(
            "{:>14}: {:>9.2} tok/s  {:.2}x vs multi-round  (blocked {:.2} ms, straw-man {:.2} ms)",
            row.name,
            row.tokens_per_s,
            row.speedup_vs_multiround,
            row.blocked_ms,
            row.multiround_ms
        );
        print_points(&row.threads_ms);
    }
    for row in &report.gemm {
        println!(
            "{:>14}: {:.2}x vs scalar GEMM  (blocked {:.2} ms, ref {:.2} ms)",
            row.name, row.speedup_vs_ref, row.blocked_ms, row.ref_ms
        );
        print_points(&row.threads_ms);
    }

    let data = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, &data).expect("write report");
    println!("wrote {out_path}");

    if let Some(path) = check_path {
        // Round-trip the emitted report (malformed-JSON gate) and compare
        // ratios against the committed baseline.
        let reread: Report = match serde_json::from_str(&data) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("check failed: emitted report is malformed: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        let baseline_text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check failed: cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let baseline: Report = match serde_json::from_str(&baseline_text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("check failed: baseline {path} is malformed: {e:?}");
                return ExitCode::FAILURE;
            }
        };
        let violations = check_against(&reread, &baseline);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("check failed: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("check passed against {path}");
    }
    ExitCode::SUCCESS
}
