//! Cross-conversation KV sharing: dedup ratio, hit tokens, and TTFT as
//! the number of agents sharing one tool preamble grows.
//!
//! An agentic fleet of K conversations all open with the same
//! 2,048-token preamble. A per-conversation cache stores the preamble's
//! KV once *per agent*; the content-addressed cache
//! (`DESIGN.md` §14) stores it once and attaches every agent to
//! the same refcounted chunk chain. This experiment measures, at
//! K ∈ {1, 8, 64} sharers:
//!
//! * **dedup ratio** — physical / logical resident tokens (lower is
//!   better; 1.0 means no sharing),
//! * **shared-hit tokens** — preamble tokens served from the shared
//!   chain instead of being recomputed or duplicated,
//! * **TTFT** — mean time-to-first-token, which sharing improves by
//!   turning every agent's preamble prefill into a cache hit.
//!
//! Every point runs **twice in-process** and the report records whether
//! the reruns were identical (`deterministic`), and a functional
//! section forks one real-math conversation into 8 branches to prove
//! the shared storage is *bit-identical* to unshared serving.
//!
//! CLI: `--smoke` (short run for CI), `--out <path>` (default
//! `results/BENCH_sharing.json`), `--check` (exit non-zero unless the
//! 8-sharer dedup ratio is ≤ 0.35, every point is deterministic, and
//! the functional fork outputs are bit-identical).

use pensieve_bench::print_table;
use pensieve_core::{EngineConfig, FunctionalConfig, FunctionalEngine, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop, DriverConfig};
use serde::Serialize;

/// Tokens of the shared tool preamble (a whole number of 32-token
/// chunks, so the full preamble is shareable).
const PREAMBLE_TOKENS: usize = 2048;

/// Measurements at one sharer count.
#[derive(Debug, Clone, PartialEq, Serialize)]
struct SharingRow {
    /// Conversations sharing the preamble.
    sharers: usize,
    /// Logical resident tokens (per-sharer accounting).
    logical_resident_tokens: usize,
    /// Physical resident tokens (shared chunks counted once).
    physical_resident_tokens: usize,
    /// physical / logical; 1.0 = no sharing.
    dedup_ratio: f64,
    /// Preamble tokens served from the shared chain.
    shared_hit_tokens: u64,
    /// Overall history hit rate.
    hit_rate: f64,
    /// Mean time-to-first-token, milliseconds.
    mean_ttft_ms: f64,
    /// P90 normalized latency, ms/token.
    p90_normalized_ms: f64,
    /// True when the in-process rerun reproduced this row exactly.
    deterministic: bool,
}

/// Functional (real-math) fork section of the report.
#[derive(Debug, Clone, Serialize)]
struct FunctionalRow {
    /// Conversations sharing the forked history (parent + children).
    sharers: usize,
    /// Every branch decoded bit-identically to unshared recomputation.
    bit_identical: bool,
    /// Raw-token store physical tokens (shared chunks once).
    store_physical_tokens: usize,
    /// Raw-token store logical tokens (per-conversation sum).
    store_logical_tokens: usize,
    /// physical / logical for the raw-token store.
    store_dedup_ratio: f64,
}

/// The whole report, written to `results/BENCH_sharing.json`.
#[derive(Debug, Clone, Serialize)]
struct SharingReport {
    /// Shared preamble length in tokens.
    preamble_tokens: usize,
    /// Timing-model rows at each sharer count.
    rows: Vec<SharingRow>,
    /// Real-math fork bit-identity section.
    functional: FunctionalRow,
}

/// Serves K agents sharing the preamble once and extracts the row
/// (without the determinism flag — the caller compares reruns).
fn run_sharers(sharers: usize, turns_per_agent: usize) -> SharingRow {
    let spec = DatasetSpec::agentic(PREAMBLE_TOKENS);
    let mut convs = spec.generate(sharers, 101 + sharers as u64);
    for c in &mut convs {
        c.turns.truncate(turns_per_agent);
    }
    let mut engine = SimServingEngine::builder(
        EngineConfig::pensieve_shared_prefix(PREAMBLE_TOKENS),
        ModelConfig::opt_13b(),
        HardwareSpec::azure_nc_a100(1),
    )
    .build();
    let result = run_closed_loop(
        &mut engine,
        &convs,
        &DriverConfig {
            request_rate: (sharers as f64).max(1.0),
            mean_think_time: 5.0,
            seed: 77,
            system_prompt_tokens: spec.preamble_tokens,
        },
    );
    let summary = result.summary();
    let stats = engine.cache_stats();
    let logical = engine.logical_resident_tokens();
    let physical = engine.physical_resident_tokens();
    SharingRow {
        sharers,
        logical_resident_tokens: logical,
        physical_resident_tokens: physical,
        dedup_ratio: physical as f64 / logical.max(1) as f64,
        shared_hit_tokens: stats.shared_hit_tokens,
        hit_rate: stats.hit_rate(),
        mean_ttft_ms: summary.mean_ttft * 1e3,
        p90_normalized_ms: summary.p90_normalized * 1e3,
        deterministic: true,
    }
}

/// Forks one real-math conversation into `forks` branches and serves a
/// turn on each; every branch must decode bit-identically to stateless
/// recomputation of its full (shared) history.
fn functional_fork(forks: usize) -> FunctionalRow {
    let cfg = ModelConfig::tiny_llama();
    let mut e = FunctionalEngine::new(&cfg, 23, FunctionalConfig::default());
    let parent = SessionId(1);
    let prompt = |seed: u32, len: usize| -> Vec<u32> {
        (0..len as u32)
            .map(|i| (seed * 131 + i * 17) % cfg.vocab_size as u32)
            .collect()
    };
    for turn in 0..2 {
        e.serve_turn(parent, &prompt(turn, 6), 3);
    }
    let base = e.history(parent);
    let mut bit_identical = true;
    for k in 0..forks.saturating_sub(1) {
        let child = SessionId(100 + k as u64);
        e.fork_conversation(parent, child)
            .expect("fresh child fork");
        let p = prompt(50 + k as u32, 6);
        let got = e.serve_turn(child, &p, 4);
        let mut full = base.clone();
        full.extend_from_slice(&p);
        bit_identical &= got == e.reference_decode(&full, 4);
    }
    let (physical, logical) = e.store_dedup();
    FunctionalRow {
        sharers: forks,
        bit_identical,
        store_physical_tokens: physical,
        store_logical_tokens: logical,
        store_dedup_ratio: physical as f64 / logical.max(1) as f64,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let check = args.iter().any(|a| a == "--check");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "results/BENCH_sharing.json".to_owned());

    let turns = if smoke { 2 } else { 3 };
    let sharer_counts: &[usize] = if smoke { &[1, 8] } else { &[1, 8, 64] };
    println!(
        "Cross-conversation KV sharing: OPT-13B, agentic fleet, {PREAMBLE_TOKENS}-token shared preamble\n"
    );

    let mut rows = Vec::new();
    for &k in sharer_counts {
        let first = run_sharers(k, turns);
        let rerun = run_sharers(k, turns);
        let deterministic = first == rerun;
        rows.push(SharingRow {
            deterministic,
            ..first
        });
    }
    let functional = functional_fork(8);

    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.sharers.to_string(),
                format!("{:.3}", r.dedup_ratio),
                r.shared_hit_tokens.to_string(),
                format!("{:.0}%", r.hit_rate * 100.0),
                format!("{:.1}", r.mean_ttft_ms),
                if r.deterministic { "yes" } else { "NO" }.to_owned(),
            ]
        })
        .collect();
    print_table(
        &[
            "sharers",
            "dedup (phys/logical)",
            "shared-hit tokens",
            "hit rate",
            "mean ttft (ms)",
            "deterministic",
        ],
        &table,
    );
    println!(
        "\nfunctional fork x{}: bit-identical={}, store dedup={:.3}",
        functional.sharers, functional.bit_identical, functional.store_dedup_ratio
    );

    let report = SharingReport {
        preamble_tokens: PREAMBLE_TOKENS,
        rows,
        functional,
    };
    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("create results dir");
    }
    let data = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out, data).expect("write results file");
    println!("wrote {out}");

    if check {
        let mut failures = Vec::new();
        let at8 = report.rows.iter().find(|r| r.sharers == 8);
        match at8 {
            Some(r) if r.dedup_ratio <= 0.35 => {}
            Some(r) => failures.push(format!(
                "dedup ratio at 8 sharers is {:.3}, gate is 0.35",
                r.dedup_ratio
            )),
            None => failures.push("no 8-sharer row to gate on".to_owned()),
        }
        if let Some(r) = report.rows.iter().find(|r| !r.deterministic) {
            failures.push(format!("rerun at {} sharers diverged", r.sharers));
        }
        if !report.functional.bit_identical {
            failures.push("functional fork outputs are not bit-identical".to_owned());
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("CHECK FAILED: {f}");
            }
            std::process::exit(1);
        }
        println!("all sharing gates passed");
    }
}
