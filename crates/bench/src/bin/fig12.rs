//! Figure 12: multi-token attention kernel microbenchmark (real compute).
//!
//! Batch of 32 requests, 8 query tokens each, over paged KV contexts of
//! varying size, comparing (as in the paper):
//!
//! * **Ideal** — fused attention over contiguous KV (performance ceiling);
//! * **CopyOut+Attention** — gather paged KV to contiguous, then fuse;
//! * **Multi-round PagedAttention** — one single-token paged call per
//!   prompt token;
//! * **Pensieve** — the multi-token paged kernel.
//!
//! These are the actual CPU kernels from `pensieve-kernels` (f32), scaled
//! to 8 heads x 64 dims so a sweep finishes in seconds; the *relative*
//! behaviour (copy cost linear in context, multi-round cost linear in
//! query length) is platform-independent.

use std::time::Instant;

use pensieve_bench::{print_table, write_json};
use pensieve_kernels::attention::contiguous::fused_contiguous;
use pensieve_kernels::attention::copyout::copyout_attention;
use pensieve_kernels::attention::multi::paged_multi_token;
use pensieve_kernels::attention::multiround::multi_round_single_token;
use pensieve_kernels::paged::gather_contiguous;
use pensieve_kernels::{AttnConfig, AttnSeq, BlockTable, KvLayout, Matrix, PagedKvCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;

const BATCH: usize = 32;
const QUERY: usize = 8;
const HEADS: usize = 8;
const HEAD_DIM: usize = 64;
const BLOCK: usize = 16;

#[derive(Serialize)]
struct Row {
    context: usize,
    ideal_ms: f64,
    copyout_ms: f64,
    multiround_ms: f64,
    pensieve_ms: f64,
}

struct Setup {
    cfg: AttnConfig,
    pool: PagedKvCache,
    tables: Vec<BlockTable>,
    q: Matrix,
    context: usize,
}

impl Setup {
    fn new(context: usize, rng: &mut StdRng) -> Self {
        let cfg = AttnConfig::new(HEADS, HEADS, HEAD_DIM);
        let layout = KvLayout {
            num_kv_heads: HEADS,
            head_dim: HEAD_DIM,
            block_size: BLOCK,
        };
        let blocks_needed = BATCH * context.div_ceil(BLOCK) + 1;
        let mut pool = PagedKvCache::new(layout, 1, blocks_needed);
        let tf = layout.token_floats();
        let mut tables = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            let mut t = BlockTable::new(BLOCK);
            for _ in 0..context {
                let (b, s) = t.append_token(&mut pool).expect("sized pool");
                let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                pool.write_token(0, b, s, &k, &v);
            }
            tables.push(t);
        }
        let q = Matrix::from_vec(
            BATCH * QUERY,
            cfg.q_width(),
            (0..BATCH * QUERY * cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        Setup {
            cfg,
            pool,
            tables,
            q,
            context,
        }
    }

    fn seqs(&self) -> Vec<AttnSeq<'_>> {
        (0..BATCH)
            .map(|i| AttnSeq {
                q_start: i * QUERY,
                q_len: QUERY,
                context_len: self.context,
                table: &self.tables[i],
            })
            .collect()
    }
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    // One warmup, then best of 3 (stable on a noisy CPU).
    f();
    (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .fold(f64::INFINITY, f64::min)
}

fn main() {
    println!(
        "Figure 12: multi-token attention over non-contiguous KV\n(batch {BATCH}, query {QUERY}, {HEADS} heads x {HEAD_DIM} dims, real CPU kernels)\n"
    );
    let mut rng = StdRng::seed_from_u64(99);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for context in [128usize, 256, 512, 1024, 2048] {
        let s = Setup::new(context, &mut rng);
        let layer = s.pool.layer(0);
        let seqs = s.seqs();

        // Ideal: contiguous KV pre-gathered outside the timed region.
        let gathered: Vec<(Matrix, Matrix)> = s
            .tables
            .iter()
            .map(|t| gather_contiguous(&layer, t, context))
            .collect();
        let qs: Vec<Matrix> = (0..BATCH)
            .map(|i| {
                let mut m = Matrix::zeros(QUERY, s.cfg.q_width());
                for j in 0..QUERY {
                    m.row_mut(j).copy_from_slice(s.q.row(i * QUERY + j));
                }
                m
            })
            .collect();
        let ideal = time_ms(|| {
            for i in 0..BATCH {
                std::hint::black_box(fused_contiguous(
                    &s.cfg,
                    &qs[i],
                    &gathered[i].0,
                    &gathered[i].1,
                ));
            }
        });
        let copyout = time_ms(|| {
            std::hint::black_box(copyout_attention(&s.cfg, &s.q, &layer, &seqs));
        });
        let multiround = time_ms(|| {
            std::hint::black_box(multi_round_single_token(&s.cfg, &s.q, &layer, &seqs));
        });
        let pensieve = time_ms(|| {
            std::hint::black_box(paged_multi_token(&s.cfg, &s.q, &layer, &seqs));
        });
        rows.push(vec![
            context.to_string(),
            format!("{ideal:.2}"),
            format!("{copyout:.2}"),
            format!("{multiround:.2}"),
            format!("{pensieve:.2}"),
        ]);
        json.push(Row {
            context,
            ideal_ms: ideal,
            copyout_ms: copyout,
            multiround_ms: multiround,
            pensieve_ms: pensieve,
        });
        eprintln!("  context {context}: done");
    }
    print_table(
        &[
            "context",
            "ideal (ms)",
            "copyout (ms)",
            "multi-round (ms)",
            "Pensieve (ms)",
        ],
        &rows,
    );
    let last = json.last().expect("rows");
    println!(
        "\nAt context {}: Pensieve = {:.2}x ideal; copy-out overhead {:.2}x; multi-round {:.2}x.",
        last.context,
        last.pensieve_ms / last.ideal_ms,
        last.copyout_ms / last.ideal_ms,
        last.multiround_ms / last.ideal_ms,
    );
    write_json("fig12", &json);

    query_sweep(&mut rng);
}

/// §3.2's claim, isolated: multi-round single-token attention "gives up
/// the parallelization opportunity brought by the extra query token
/// dimension", so its *per-token* cost stays flat while the multi-token
/// kernel amortizes each loaded KV block across all query rows.
fn query_sweep(rng: &mut StdRng) {
    #[derive(Serialize)]
    struct QRow {
        query_len: usize,
        pensieve_ms: f64,
        multiround_ms: f64,
    }
    println!("\nQuery-length sweep at context 1024 (batch {BATCH}):\n");
    let context = 1024usize;
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for q_len in [1usize, 2, 4, 8, 16] {
        let cfg = AttnConfig::new(HEADS, HEADS, HEAD_DIM);
        let layout = KvLayout {
            num_kv_heads: HEADS,
            head_dim: HEAD_DIM,
            block_size: BLOCK,
        };
        let mut pool = PagedKvCache::new(layout, 1, BATCH * context.div_ceil(BLOCK) + 1);
        let tf = layout.token_floats();
        let mut tables = Vec::with_capacity(BATCH);
        for _ in 0..BATCH {
            let mut t = BlockTable::new(BLOCK);
            for _ in 0..context {
                let (b, s) = t.append_token(&mut pool).expect("sized pool");
                let k: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                let v: Vec<f32> = (0..tf).map(|_| rng.random_range(-1.0..1.0)).collect();
                pool.write_token(0, b, s, &k, &v);
            }
            tables.push(t);
        }
        let q = Matrix::from_vec(
            BATCH * q_len,
            cfg.q_width(),
            (0..BATCH * q_len * cfg.q_width())
                .map(|_| rng.random_range(-1.0..1.0))
                .collect(),
        );
        let seqs: Vec<AttnSeq<'_>> = (0..BATCH)
            .map(|i| AttnSeq {
                q_start: i * q_len,
                q_len,
                context_len: context,
                table: &tables[i],
            })
            .collect();
        let layer = pool.layer(0);
        let pensieve = time_ms(|| {
            std::hint::black_box(paged_multi_token(&cfg, &q, &layer, &seqs));
        });
        let multiround = time_ms(|| {
            std::hint::black_box(multi_round_single_token(&cfg, &q, &layer, &seqs));
        });
        rows.push(vec![
            q_len.to_string(),
            format!("{pensieve:.2}"),
            format!("{multiround:.2}"),
            format!("{:.2}x", multiround / pensieve),
        ]);
        json.push(QRow {
            query_len: q_len,
            pensieve_ms: pensieve,
            multiround_ms: multiround,
        });
    }
    print_table(
        &["query len", "Pensieve (ms)", "multi-round (ms)", "ratio"],
        &rows,
    );
    write_json("fig12_query_sweep", &json);
}
