//! `trace_report` — post-process a `serve_sim --trace-out` JSONL trace.
//!
//! ```text
//! cargo run --release -p pensieve-bench --bin trace_report -- t.jsonl
//! ```
//!
//! Parses the trace strictly (any malformed line is reported with its
//! line number and fails the run, so this doubles as a schema
//! validator), then prints per-turn cache-hit attribution and
//! PCIe/compute overlap statistics. Event and field semantics are
//! documented in `docs/OBSERVABILITY.md`.

use std::process::exit;

use pensieve_obs::{parse_jsonl, TraceReport};

const USAGE: &str = "usage: trace_report <trace.jsonl>";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let [path] = args.as_slice() else {
        eprintln!("{USAGE}");
        exit(2);
    };
    if path == "--help" || path == "-h" {
        println!("{USAGE}");
        return;
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            exit(2);
        }
    };
    let events = match parse_jsonl(&text) {
        Ok(evs) => evs,
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            exit(1);
        }
    };
    if events.is_empty() {
        eprintln!("{path}: no events");
        exit(1);
    }
    println!("{path}: {} events", events.len());
    print!("{}", TraceReport::from_events(&events).render());
}
