//! Extension (paper §7, footnote 3): shared system-prompt KV state.
//!
//! Chatbots commonly prepend one system prompt to every conversation.
//! Per-conversation caching stores it once *per conversation*; the paper
//! notes it "can be handled by explicitly designating the system prompt
//! state as reusable". This experiment serves a ShareGPT workload whose
//! conversations all share a system prompt of varying length and compares
//! Pensieve with and without the globally shared prefix, plus vLLM.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!(
        "Shared system-prompt extension: OPT-13B, ShareGPT @ 6 req/s,\nsystem prompt shared by all conversations\n"
    );
    let mut specs = Vec::new();
    for &sys_tokens in &[0usize, 256, 1024, 2048] {
        for engine in [
            EngineConfig::pensieve_shared_prefix(sys_tokens),
            EngineConfig::pensieve(),
            EngineConfig::vllm(),
        ] {
            // With sys_tokens == 0 the shared variant equals plain
            // Pensieve; skip the duplicate.
            if sys_tokens == 0 && engine.shared_prefix_tokens == 0 && engine.name != "Pensieve" {
                continue;
            }
            let mut spec = PointSpec {
                engine,
                model: ModelConfig::opt_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: 6.0,
                think_time: 60.0,
                seed: 50,
                system_prompt_tokens: sys_tokens,
            };
            spec.engine.name = format!("{} | sys={sys_tokens}", spec.engine.name);
            specs.push(spec);
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}", p.summary.mean_ttft * 1e3),
                format!("{:.0}%", p.cache.hit_rate * 100.0),
            ]
        })
        .collect();
    print_table(
        &[
            "system | sys prompt",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "mean ttft (ms)",
            "hit rate",
        ],
        &rows,
    );
    write_json("shared_prefix", &points);
}
