//! `serve_sim` — run one serving experiment from the command line.
//!
//! ```text
//! cargo run --release -p pensieve-bench --bin serve_sim -- \
//!     --system pensieve --model llama2-13b --dataset sharegpt \
//!     --rate 6 --think 60 --duration 400 --seed 42
//! ```
//!
//! `--dataset` also accepts a path to a conversation-trace JSON file —
//! either a real ShareGPT dump or a file produced by
//! `pensieve_workload::save_conversations`.

use std::path::{Path, PathBuf};
use std::process::exit;

use pensieve_bench::{cluster_for, engine_builder_for, print_table, run_point_on, PointSpec};
use pensieve_cluster::RouterPolicy;
use pensieve_core::{EngineConfig, ServingBackend};
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_obs::{to_jsonl, SharedRecorder};
use pensieve_workload::dataset::{DatasetSpec, DatasetStats};
use pensieve_workload::trace::{load_conversations, load_sharegpt_json};

const USAGE: &str = "\
usage: serve_sim [options]
  --system   pensieve | pensieve-gpu | pensieve-lru | pensieve-separate |
             vllm | trt | orca                       (default pensieve)
  --model    opt-13b | opt-66b | llama2-13b | llama2-70b  (default llama2-13b)
  --dataset  sharegpt | ultrachat | <trace.json>     (default sharegpt)
  --rate     offered request rate, req/s             (default 4)
  --think    mean user think time, seconds           (default 60)
  --duration simulated seconds of arrivals           (default 400)
  --gpus     tensor-parallel GPUs                    (default: model's)
  --system-prompt  shared system prompt tokens       (default 0)
  --seed     workload seed                           (default 42)
  --replicas cluster replicas behind a router        (default 1: no router)
  --router   round_robin | least_loaded | cache_aware  (default cache_aware)
  --trace-out    write a JSONL event trace here      (see docs/OBSERVABILITY.md)
  --metrics-out  write a Prometheus-style text dump here";

fn parse_engine(name: &str) -> Option<EngineConfig> {
    Some(match name {
        "pensieve" => EngineConfig::pensieve(),
        "pensieve-gpu" => EngineConfig::pensieve_gpu_cache(),
        "pensieve-lru" => EngineConfig::pensieve_lru(),
        "pensieve-separate" => EngineConfig::pensieve_non_unified(),
        "vllm" => EngineConfig::vllm(),
        "trt" | "tensorrt" => EngineConfig::tensorrt_llm(),
        "orca" => EngineConfig::orca(),
        _ => return None,
    })
}

fn parse_model(name: &str) -> Option<ModelConfig> {
    Some(match name {
        "opt-13b" => ModelConfig::opt_13b(),
        "opt-66b" => ModelConfig::opt_66b(),
        "llama2-13b" => ModelConfig::llama2_13b(),
        "llama2-70b" => ModelConfig::llama2_70b(),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut system = "pensieve".to_owned();
    let mut model_name = "llama2-13b".to_owned();
    let mut dataset = "sharegpt".to_owned();
    let mut rate = 4.0f64;
    let mut think = 60.0f64;
    let mut duration = 400.0f64;
    let mut gpus: Option<usize> = None;
    let mut system_prompt = 0usize;
    let mut seed = 42u64;
    let mut replicas = 1usize;
    let mut router = RouterPolicy::CacheAware;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;

    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            println!("{USAGE}");
            return;
        }
        let Some(value) = it.next() else {
            eprintln!("missing value for {flag}\n{USAGE}");
            exit(2);
        };
        let ok = match flag.as_str() {
            "--system" => {
                system = value.clone();
                true
            }
            "--model" => {
                model_name = value.clone();
                true
            }
            "--dataset" => {
                dataset = value.clone();
                true
            }
            "--rate" => value.parse().map(|v| rate = v).is_ok(),
            "--think" => value.parse().map(|v| think = v).is_ok(),
            "--duration" => value.parse().map(|v| duration = v).is_ok(),
            "--gpus" => value.parse().map(|v| gpus = Some(v)).is_ok(),
            "--system-prompt" => value.parse().map(|v| system_prompt = v).is_ok(),
            "--seed" => value.parse().map(|v| seed = v).is_ok(),
            "--replicas" => value.parse().map(|v| replicas = v).is_ok() && replicas >= 1,
            "--router" => RouterPolicy::parse(value).map(|p| router = p).is_some(),
            "--trace-out" => {
                trace_out = Some(PathBuf::from(value));
                true
            }
            "--metrics-out" => {
                metrics_out = Some(PathBuf::from(value));
                true
            }
            _ => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                exit(2);
            }
        };
        if !ok {
            eprintln!("invalid value {value:?} for {flag}\n{USAGE}");
            exit(2);
        }
    }

    let Some(mut engine) = parse_engine(&system) else {
        eprintln!("unknown system {system:?}\n{USAGE}");
        exit(2);
    };
    // The flag means a *shared* system prompt: pair the workload's extra
    // history with the engine-side pinned shared prefix, the same wiring
    // the `shared_prefix` bench uses. Stateless baselines have no cache
    // to share it from.
    if system_prompt > 0 && engine.stateful {
        engine.shared_prefix_tokens = system_prompt;
    }
    let Some(model) = parse_model(&model_name) else {
        eprintln!("unknown model {model_name:?}\n{USAGE}");
        exit(2);
    };
    let num_gpus = gpus.unwrap_or(model.default_num_gpus);
    std::env::set_var("PENSIEVE_DURATION", format!("{duration}"));

    // Dataset: a known synthetic spec, or a trace file.
    let spec = match dataset.as_str() {
        "sharegpt" => DatasetSpec::sharegpt(),
        "ultrachat" => DatasetSpec::ultrachat(),
        path => {
            let p = Path::new(path);
            let convs = load_conversations(p)
                .or_else(|_| load_sharegpt_json(p))
                .unwrap_or_else(|e| {
                    eprintln!("cannot load trace {path:?}: {e}");
                    exit(2);
                });
            let stats = DatasetStats::measure(&convs);
            // Wrap the trace's statistics in a spec so the sweep sizes the
            // workload correctly, then substitute the real conversations.
            println!(
                "trace: {} conversations, mean turns {:.2}, in {:.1}, out {:.1}",
                stats.conversations, stats.mean_turns, stats.mean_input, stats.mean_output
            );
            return run_trace(
                engine,
                model,
                num_gpus,
                convs,
                rate,
                think,
                seed,
                system_prompt,
                (replicas, router),
                &Outputs {
                    trace_out,
                    metrics_out,
                },
            );
        }
    };

    let outputs = Outputs {
        trace_out,
        metrics_out,
    };
    let spec = PointSpec {
        engine,
        model,
        hardware: HardwareSpec::azure_nc_a100(num_gpus),
        dataset: spec,
        request_rate: rate,
        think_time: think,
        seed,
        system_prompt_tokens: system_prompt,
    };
    let recorder = outputs.recorder();
    let point = if replicas > 1 {
        let mut cluster = cluster_for(&spec, replicas, router, recorder.clone());
        run_point_on(&spec, &mut cluster)
    } else {
        let mut builder = engine_builder_for(&spec);
        if let Some(rec) = recorder.clone() {
            builder = builder.recorder(rec);
        }
        run_point_on(&spec, &mut builder.build())
    };
    outputs.write(recorder.as_ref());
    let system = system_label(&point.system, replicas, router);
    report(
        &system,
        &point.model,
        &point.dataset,
        &point.summary,
        point.cache.hit_rate,
    );
}

/// `pensieve` for one engine, `pensieve x4 (cache_aware)` for a cluster.
fn system_label(system: &str, replicas: usize, router: RouterPolicy) -> String {
    if replicas > 1 {
        format!("{system} x{replicas} ({router})")
    } else {
        system.to_owned()
    }
}

/// Where (if anywhere) to dump the trace and metrics after a run.
struct Outputs {
    trace_out: Option<PathBuf>,
    metrics_out: Option<PathBuf>,
}

impl Outputs {
    /// A recorder to attach to the engine, or `None` when neither output
    /// was requested (keeping the run allocation-free on the trace path).
    fn recorder(&self) -> Option<SharedRecorder> {
        if self.trace_out.is_some() || self.metrics_out.is_some() {
            Some(SharedRecorder::new())
        } else {
            None
        }
    }

    /// Writes the requested artifacts; exits nonzero on I/O failure.
    fn write(&self, recorder: Option<&SharedRecorder>) {
        let Some(rec) = recorder else { return };
        if let Some(path) = &self.trace_out {
            let events = rec.take_events();
            if let Err(e) = std::fs::write(path, to_jsonl(&events)) {
                eprintln!("cannot write trace {}: {e}", path.display());
                exit(1);
            }
            println!("wrote {} trace events to {}", events.len(), path.display());
        }
        if let Some(path) = &self.metrics_out {
            let text = rec.metrics().prometheus();
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("cannot write metrics {}: {e}", path.display());
                exit(1);
            }
            println!("wrote metrics dump to {}", path.display());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn run_trace(
    engine: EngineConfig,
    model: ModelConfig,
    num_gpus: usize,
    convs: Vec<pensieve_workload::dataset::Conversation>,
    rate: f64,
    think: f64,
    seed: u64,
    system_prompt: usize,
    (replicas, router): (usize, RouterPolicy),
    outputs: &Outputs,
) {
    use pensieve_workload::driver::{run_closed_loop, DriverConfig};
    let name = system_label(&engine.name, replicas, router);
    let model_name = model.name.clone();
    let spec = PointSpec {
        engine,
        model,
        hardware: HardwareSpec::azure_nc_a100(num_gpus),
        dataset: DatasetSpec::sharegpt(), // placeholder; convs come from the trace
        request_rate: rate,
        think_time: think,
        seed,
        system_prompt_tokens: system_prompt,
    };
    let drv = DriverConfig {
        request_rate: rate,
        mean_think_time: think,
        seed,
        system_prompt_tokens: system_prompt,
    };
    let recorder = outputs.recorder();
    let (result, hit_rate) = if replicas > 1 {
        let mut cluster = cluster_for(&spec, replicas, router, recorder.clone());
        let result = run_closed_loop(&mut cluster, &convs, &drv);
        let hit = cluster.cache_stats().hit_rate();
        (result, hit)
    } else {
        let mut builder = engine_builder_for(&spec);
        if let Some(rec) = recorder.clone() {
            builder = builder.recorder(rec);
        }
        let mut e = builder.build();
        let result = run_closed_loop(&mut e, &convs, &drv);
        let hit = ServingBackend::cache_stats(&e).hit_rate();
        (result, hit)
    };
    outputs.write(recorder.as_ref());
    let s = result.summary();
    report(&name, &model_name, "trace", &s, hit_rate);
}

fn report(
    system: &str,
    model: &str,
    dataset: &str,
    s: &pensieve_workload::metrics::LatencySummary,
    hit_rate: f64,
) {
    println!("\n{system} serving {model} on {dataset}:");
    print_table(
        &["metric", "value"],
        &[
            vec!["completed requests".into(), s.requests.to_string()],
            vec![
                "throughput (req/s)".into(),
                format!("{:.2}", s.throughput_rps),
            ],
            vec![
                "throughput (tok/s)".into(),
                format!("{:.0}", s.throughput_tps),
            ],
            vec![
                "mean norm latency".into(),
                format!("{:.1} ms/token", s.mean_normalized * 1e3),
            ],
            vec![
                "p50 norm latency".into(),
                format!("{:.1} ms/token", s.p50_normalized * 1e3),
            ],
            vec![
                "p90 norm latency".into(),
                format!("{:.1} ms/token", s.p90_normalized * 1e3),
            ],
            vec!["mean ttft".into(), format!("{:.1} ms", s.mean_ttft * 1e3)],
            vec!["cache hit rate".into(), format!("{:.1}%", hit_rate * 100.0)],
        ],
    );
}
