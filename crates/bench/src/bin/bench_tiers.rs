//! Deep-storage-tier benchmark: emits `BENCH_tiers.json`.
//!
//! Sweeps the session idle-time distribution (the closed-loop driver's
//! mean think time) on a memory-starved single replica and compares
//! two-tier Pensieve ([`EngineConfig::pensieve`]) against the deep
//! hierarchy ([`EngineConfig::pensieve_deep_tiers`]). The GPU and CPU
//! budgets are shrunk to a few thousand tokens (sized via the engine's
//! own `kv_bytes_per_token`), so idle sessions overflow the CPU tier
//! quickly: the two-tier system must drop and recompute them, while the
//! deep hierarchy demotes them to the simulated NVMe and cold tiers and
//! reads them back on return.
//!
//! Per sweep point the report records the **hit-token rate**
//! (`CacheStats::hit_rate`: history tokens served from any cache tier
//! over served-plus-recomputed), the per-tier hit-token split, demotion
//! and drop totals, and latency (mean TTFT, p90 normalized).
//!
//! **What CI gates on.** Only the hit-token rate: for idle-heavy
//! workloads the deep hierarchy must beat the two-tier baseline. TTFT is
//! *reported but never gated* — at opt-13b's ~0.8 MB/token of KV, a
//! cold-tier (NFS-speed) read can legitimately cost more wall-clock than
//! recomputing the tokens, and the hierarchy's claim is about avoided
//! recomputation, not about the cold tier being fast (`docs/STORAGE.md`,
//! "Failure modes and honesty notes").
//!
//! The run is pure simulation, so rows are deterministic; the binary
//! re-runs the idle-heaviest deep point and aborts if the rows differ.
//!
//! Usage: `bench_tiers [--smoke] [--out PATH] [--check BASELINE]`
//!
//! * `--smoke` shortens the simulated arrival window so CI finishes in
//!   seconds (the committed full-length report is `results/BENCH_tiers.json`).
//! * `--out PATH` writes the report there (default `BENCH_tiers.json`).
//! * `--check BASELINE` re-reads the emitted report, validates its
//!   schema, and fails (exit 1) unless the deep-tier gate holds in both
//!   the fresh report and the committed `BASELINE`.

use std::process::ExitCode;

use pensieve_bench::{driver_for, engine_for, print_table, sim_duration, sweep_threads, PointSpec};
use pensieve_core::{EngineConfig, SimServingEngine};
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::run_closed_loop;
use serde::{Deserialize, Serialize};

/// Mean think times swept, seconds: active chat -> mixed -> idle-heavy.
const THINK_TIMES: [f64; 3] = [5.0, 60.0, 180.0];
/// Offered request rate (requests/s) at every point.
const REQUEST_RATE: f64 = 1.0;
/// Workload + arrival seed.
const SEED: u64 = 17;
/// GPU KV budget in tokens (shrunken; paper-scale is millions).
const GPU_TOKENS: usize = 8192;
/// CPU cache budget in tokens.
const CPU_TOKENS: usize = 4096;
/// Tier-2 simulated-NVMe capacity in tokens (kept small so demotion
/// cascades into the cold tier and both deep tiers see reads).
const SSD_TOKENS: usize = 4096;
/// Tier-3 simulated cold-store capacity in tokens.
const COLD_TOKENS: usize = 1 << 20;
/// Minimum hit-token-rate margin of deep tiers over two-tier at the
/// idle-heaviest point — the headline gate.
const GATE_MARGIN: f64 = 0.05;

/// Top-level report written to `BENCH_tiers.json`.
#[derive(Serialize, Deserialize)]
struct Report {
    /// Bumped when the layout of this file changes.
    schema_version: u64,
    /// True when produced by `--smoke` (shortened arrival window).
    smoke: bool,
    /// Seconds of simulated conversation arrivals per point.
    duration_s: f64,
    /// GPU KV budget (tokens) the points ran under.
    gpu_tokens: usize,
    /// CPU cache budget (tokens).
    cpu_tokens: usize,
    /// Tier-2 NVMe capacity (tokens).
    ssd_tokens: usize,
    /// Tier-3 cold-store capacity (tokens).
    cold_tokens: usize,
    /// One row per (system, think time), two-tier first at each think time.
    rows: Vec<TierRow>,
}

/// One sweep-point measurement.
#[derive(Serialize, Deserialize, Clone, PartialEq)]
struct TierRow {
    /// Engine display name (`Pensieve` / `Pensieve (deep tiers)`).
    system: String,
    /// Mean think time (s) — the idle-time knob.
    think_time: f64,
    /// Completed requests in the steady-state window.
    requests: usize,
    /// History tokens served from any tier over served + recomputed —
    /// the headline number CI gates on.
    hit_token_rate: f64,
    /// History tokens served from the GPU tier.
    gpu_hit_tokens: u64,
    /// History tokens swapped back in from the CPU tier.
    cpu_hit_tokens: u64,
    /// History tokens read back from the simulated NVMe tier.
    ssd_hit_tokens: u64,
    /// History tokens read back from the simulated cold store.
    cold_hit_tokens: u64,
    /// History tokens recomputed because no tier held them.
    recomputed_tokens: u64,
    /// Tokens demoted down-tier instead of dropped.
    demoted_tokens: u64,
    /// Tokens dropped from the bottom of the hierarchy.
    dropped_tokens: u64,
    /// Mean time-to-first-token, ms (reported, never gated — see the
    /// module docs for why cold reads may legitimately cost TTFT).
    mean_ttft_ms: f64,
    /// p90 normalized latency, ms per output token.
    p90_normalized_ms: f64,
    /// Steady-state throughput, requests/s.
    throughput_rps: f64,
}

/// The shared shrunken replica: paper hardware with the KV budgets cut
/// to `GPU_TOKENS` / `CPU_TOKENS`, sized via a probe engine so the
/// token budgets hold regardless of the model's KV layout.
fn shrunken_hardware() -> HardwareSpec {
    let mut hw = HardwareSpec::azure_nc_a100(1);
    let probe =
        SimServingEngine::builder(EngineConfig::pensieve(), ModelConfig::opt_13b(), hw.clone())
            .build();
    let bpt = probe.kv_bytes_per_token();
    hw.gpu_kv_budget_bytes = bpt * GPU_TOKENS;
    hw.cpu_cache_bytes_per_gpu = bpt * CPU_TOKENS;
    hw
}

/// The sweep grid: per think time, the two-tier baseline then the deep
/// hierarchy, identical in everything else (same seed, same workload).
fn specs(hw: &HardwareSpec) -> Vec<PointSpec> {
    let mut out = Vec::new();
    for &think_time in &THINK_TIMES {
        for engine in [
            EngineConfig::pensieve(),
            EngineConfig::pensieve_deep_tiers(SSD_TOKENS, COLD_TOKENS),
        ] {
            out.push(PointSpec {
                engine,
                model: ModelConfig::opt_13b(),
                hardware: hw.clone(),
                dataset: DatasetSpec::sharegpt(),
                request_rate: REQUEST_RATE,
                think_time,
                seed: SEED,
                system_prompt_tokens: 0,
            });
        }
    }
    out
}

/// Runs one point and extracts the tier row (full [`pensieve_kvcache::CacheStats`],
/// not the narrower `CacheRow` the generic sweeps use).
fn run_tier_point(spec: &PointSpec, duration: f64) -> TierRow {
    let conv_rate = spec.request_rate / spec.dataset.mean_turns;
    let n = ((conv_rate * duration).ceil() as usize).max(24);
    let convs = spec.dataset.generate(n, spec.seed);
    let mut engine = engine_for(spec);
    let result = run_closed_loop(&mut engine, &convs, &driver_for(spec));
    let summary = result.summary();
    let stats = engine.cache_stats();
    TierRow {
        system: spec.engine.name.clone(),
        think_time: spec.think_time,
        requests: summary.requests,
        hit_token_rate: stats.hit_rate(),
        gpu_hit_tokens: stats.gpu_hit_tokens,
        cpu_hit_tokens: stats.cpu_hit_tokens,
        ssd_hit_tokens: stats.ssd_hit_tokens,
        cold_hit_tokens: stats.cold_hit_tokens,
        recomputed_tokens: stats.recomputed_tokens,
        demoted_tokens: stats.demoted_tokens,
        dropped_tokens: stats.dropped_tokens,
        mean_ttft_ms: summary.mean_ttft * 1e3,
        p90_normalized_ms: summary.p90_normalized * 1e3,
        throughput_rps: summary.throughput_rps,
    }
}

/// Finds the row for `(system prefix, think_time)`.
fn row(rows: &[TierRow], deep: bool, think: f64) -> Option<&TierRow> {
    rows.iter()
        .find(|r| r.think_time == think && r.system.contains("deep") == deep)
}

/// Machine-portable gates over one report (fresh or baseline). The run
/// is deterministic simulation, so these hold identically on every
/// machine; only the arrival-window length (smoke vs full) varies.
fn check_report(report: &Report, label: &str) -> Vec<String> {
    let mut bad = Vec::new();
    if report.schema_version != 1 {
        bad.push(format!(
            "{label}: schema_version {} != 1",
            report.schema_version
        ));
        return bad;
    }
    for &think in &THINK_TIMES {
        let (Some(two), Some(deep)) = (
            row(&report.rows, false, think),
            row(&report.rows, true, think),
        ) else {
            bad.push(format!("{label}: missing rows at think={think}"));
            continue;
        };
        if two.requests == 0 || deep.requests == 0 {
            bad.push(format!(
                "{label}: empty steady-state window at think={think}"
            ));
        }
        // Deep tiers may never lose to the two-tier baseline: they only
        // add places for evicted chunks to go.
        if deep.hit_token_rate < two.hit_token_rate - 1e-9 {
            bad.push(format!(
                "{label}: deep hit-token rate {:.3} below two-tier {:.3} at think={think}",
                deep.hit_token_rate, two.hit_token_rate
            ));
        }
        if two.ssd_hit_tokens + two.cold_hit_tokens > 0 {
            bad.push(format!(
                "{label}: two-tier baseline reported deep-tier hits at think={think}"
            ));
        }
    }
    let idle = THINK_TIMES[THINK_TIMES.len() - 1];
    if let (Some(two), Some(deep)) = (
        row(&report.rows, false, idle),
        row(&report.rows, true, idle),
    ) {
        if deep.hit_token_rate < two.hit_token_rate + GATE_MARGIN {
            bad.push(format!(
                "{label}: idle-heavy gate failed — deep {:.3} vs two-tier {:.3} (need +{GATE_MARGIN})",
                deep.hit_token_rate, two.hit_token_rate
            ));
        }
        if deep.ssd_hit_tokens + deep.cold_hit_tokens == 0 {
            bad.push(format!(
                "{label}: idle-heavy deep point never read from the deep tiers"
            ));
        }
        if deep.demoted_tokens == 0 {
            bad.push(format!(
                "{label}: idle-heavy deep point never demoted a chunk"
            ));
        }
    }
    bad
}

fn main() -> ExitCode {
    let mut smoke = false;
    let mut out_path = String::from("BENCH_tiers.json");
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => check_path = Some(args.next().expect("--check needs a path")),
            other => {
                eprintln!(
                    "unknown flag {other}; usage: bench_tiers [--smoke] [--out PATH] [--check BASELINE]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    let duration = if smoke { 120.0 } else { sim_duration() };

    let hw = shrunken_hardware();
    let specs = specs(&hw);
    eprintln!(
        "bench_tiers: {} points, {duration}s arrivals each (gpu={GPU_TOKENS} cpu={CPU_TOKENS} \
         ssd={SSD_TOKENS} cold={COLD_TOKENS} tokens)",
        specs.len()
    );
    let threads = sweep_threads().min(specs.len());
    let pool = crossbeam::pool::Pool::global(threads);
    let rows: Vec<TierRow> = pool.map_partitions(specs.len(), |idx| {
        let r = run_tier_point(&specs[idx], duration);
        eprintln!(
            "  [{idx}] {} think={}s: hit={:.3} ssd+cold={} demoted={}",
            r.system,
            r.think_time,
            r.hit_token_rate,
            r.ssd_hit_tokens + r.cold_hit_tokens,
            r.demoted_tokens
        );
        r
    });

    // Determinism: the idle-heaviest deep point must reproduce exactly.
    let idle = THINK_TIMES[THINK_TIMES.len() - 1];
    let idle_deep_idx = specs
        .iter()
        .position(|s| s.think_time == idle && s.engine.ssd_capacity_tokens > 0)
        .expect("grid contains the idle-heavy deep point");
    let rerun = run_tier_point(&specs[idle_deep_idx], duration);
    assert!(
        rerun == rows[idle_deep_idx],
        "bench_tiers: idle-heavy deep point is not deterministic across reruns"
    );

    let report = Report {
        schema_version: 1,
        smoke,
        duration_s: duration,
        gpu_tokens: GPU_TOKENS,
        cpu_tokens: CPU_TOKENS,
        ssd_tokens: SSD_TOKENS,
        cold_tokens: COLD_TOKENS,
        rows,
    };

    print_table(
        &[
            "system", "think", "hit", "gpu", "cpu", "ssd", "cold", "recomp", "demoted", "dropped",
            "ttft_ms", "p90_ms",
        ],
        &report
            .rows
            .iter()
            .map(|r| {
                vec![
                    r.system.clone(),
                    format!("{:.0}", r.think_time),
                    format!("{:.3}", r.hit_token_rate),
                    r.gpu_hit_tokens.to_string(),
                    r.cpu_hit_tokens.to_string(),
                    r.ssd_hit_tokens.to_string(),
                    r.cold_hit_tokens.to_string(),
                    r.recomputed_tokens.to_string(),
                    r.demoted_tokens.to_string(),
                    r.dropped_tokens.to_string(),
                    format!("{:.1}", r.mean_ttft_ms),
                    format!("{:.2}", r.p90_normalized_ms),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let data = serde_json::to_string_pretty(&report).expect("serialize report");
    std::fs::write(&out_path, &data).expect("write report");
    println!("wrote {out_path}");

    let fresh_violations = check_report(&report, "report");
    if let Some(path) = check_path {
        let mut violations = fresh_violations;
        // Round-trip the emitted report (malformed-JSON gate).
        if let Err(e) = serde_json::from_str::<Report>(&data) {
            violations.push(format!("emitted report is malformed: {e:?}"));
        }
        match std::fs::read_to_string(&path) {
            Ok(text) => match serde_json::from_str::<Report>(&text) {
                Ok(baseline) => violations.extend(check_report(&baseline, "baseline")),
                Err(e) => violations.push(format!("baseline {path} is malformed: {e:?}")),
            },
            Err(e) => violations.push(format!("cannot read baseline {path}: {e}")),
        }
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("check failed: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("check passed against {path}");
    } else if !fresh_violations.is_empty() {
        for v in &fresh_violations {
            eprintln!("warning: {v}");
        }
    }
    ExitCode::SUCCESS
}
