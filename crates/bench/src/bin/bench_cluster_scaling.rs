//! `bench_cluster_scaling` — parallel replica stepping at pool widths
//! 1/2/4 on a 64-replica chaos cluster.
//!
//! Each width runs the identical two-phase conversation script under the
//! identical seeded fault schedule, with every replica recording into
//! its own recorder and the router merging the streams in replica-index
//! order at each stepping barrier. The benchmark pins two claims:
//!
//! * **Determinism** — the merged JSONL trace hashes identically at
//!   every width (the conservative time-window barrier makes replica
//!   order irrelevant between barriers).
//! * **Scaling** — the pool's per-partition accounting yields the
//!   modeled critical-path speedup of the replica-stepping phase:
//!   `sum(partition time) / max(partition time)`, the number an
//!   unconstrained machine would see. CI containers expose one core, so
//!   wall-clock is reported for context but never gated. `modeled_wall_s`
//!   re-prices the whole run with stepping at critical-path cost.
//!
//! ```text
//! cargo run --release -p pensieve-bench --bin bench_cluster_scaling
//! ```
//!
//! Writes `results/BENCH_cluster_scaling.json`; exits nonzero if any
//! width's trace diverges from the serial run or the 4-thread modeled
//! stepping speedup falls below 2x.

use std::time::Instant;

use crossbeam::pool::Pool;
use pensieve_bench::{print_table, write_json};
use pensieve_cluster::{ReplicationConfig, ReplicationMode, Router, RouterConfig, RouterPolicy};
use pensieve_core::{EngineConfig, Request, RequestId, Response, ServingBackend, SimServingEngine};
use pensieve_kvcache::SessionId;
use pensieve_model::{HardwareSpec, ModelConfig, SimDuration, SimTime};
use pensieve_obs::{to_jsonl, SharedRecorder};
use pensieve_sim::{FaultSchedule, NodeLinkSpec};
use serde::Serialize;

const REPLICAS: usize = 64;
const CONVS: usize = 96;
const WIDTHS: [usize; 3] = [1, 2, 4];
/// Stepping batches last microseconds, so scheduler preemption on a
/// loaded host can only ever *inflate* the observed critical path.
/// Each width therefore runs `REPS` times and reports the rep with the
/// best modeled speedup; the trace hash must agree across reps.
const REPS: usize = 3;

#[derive(Debug, Serialize)]
struct ScalingPoint {
    /// Worker-pool width the router stepped replicas with.
    threads: usize,
    /// End-to-end wall time of the run (machine-dependent context).
    wall_s: f64,
    /// Stepping batches dispatched through the pool.
    pool_tasks: u64,
    /// Summed partition time of every stepping batch (serial cost).
    modeled_serial_s: f64,
    /// Summed max-partition time of every stepping batch (critical path).
    modeled_critical_s: f64,
    /// `modeled_serial_s / modeled_critical_s` — stepping-phase speedup
    /// on an unconstrained machine. 1.0 for the serial pool.
    modeled_stepping_speedup: f64,
    /// Wall time with the stepping phase re-priced at critical-path
    /// cost: `wall_s - modeled_serial_s + modeled_critical_s`.
    modeled_wall_s: f64,
    /// FNV-1a hash of the merged JSONL event trace.
    trace_hash: String,
    /// Events in the merged trace.
    trace_events: usize,
    /// Completed turns (must equal 2 x CONVS at every width).
    completed: usize,
}

#[derive(Debug, Serialize)]
struct Report {
    replicas: usize,
    conversations: usize,
    fault_seed: u64,
    points: Vec<ScalingPoint>,
    /// Every width's trace hash equals the width-1 hash.
    deterministic: bool,
    /// The 4-thread modeled stepping speedup cleared the 2x floor.
    meets_2x_modeled: bool,
}

fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fault_seed() -> u64 {
    std::env::var("PENSIEVE_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn req(id: u64, conv: u64, at: SimTime, prompt: usize, out: usize, hist: usize) -> Request {
    Request::builder()
        .id(RequestId(id))
        .session(SessionId(conv))
        .arrival(at)
        .prompt_tokens(prompt)
        .output_tokens(out)
        .history_tokens(hist)
        .build()
        .expect("bench turns are non-empty")
}

fn drain_all<B: ServingBackend>(b: &mut B) -> Vec<Response> {
    let mut out = Vec::new();
    for _ in 0..1000 {
        b.run_until(b.now() + SimDuration::from_secs(1000.0));
        out.extend(b.drain_responses());
        if b.is_idle() {
            break;
        }
    }
    out
}

fn run_at_width(width: usize) -> ScalingPoint {
    let pool = Pool::new(width);
    let recorders: Vec<SharedRecorder> = (0..REPLICAS).map(|_| SharedRecorder::new()).collect();
    let sink = SharedRecorder::new();
    let engines: Vec<SimServingEngine> = recorders
        .iter()
        .map(|rec| {
            SimServingEngine::builder(
                EngineConfig::pensieve(),
                ModelConfig::opt_13b(),
                HardwareSpec::azure_nc_a100(1),
            )
            .recorder(rec.clone())
            .build()
        })
        .collect();
    let cfg = RouterConfig {
        replication: ReplicationConfig {
            mode: ReplicationMode::Async,
            flush_threshold_tokens: 64,
            link: NodeLinkSpec::datacenter_25g(),
        },
        ..RouterConfig::default()
    };
    let mut router = Router::new(engines, RouterPolicy::CacheAware, cfg)
        .recorder(sink.clone())
        .replica_recorders(recorders)
        .pool(pool.clone());
    let schedule = FaultSchedule::generate(
        fault_seed(),
        REPLICAS,
        SimDuration::from_secs(60.0),
        6,
        1,
        SimDuration::from_secs(2.0),
    );
    router.apply_fault_schedule(&schedule);

    let before = pool.stats();
    let t0 = Instant::now();
    let mut responses = Vec::new();
    for c in 0..CONVS {
        let prompt = 256 + 16 * (c % 9);
        router.submit(req(c as u64, c as u64, router.now(), prompt, 16 + c % 7, 0));
    }
    responses.extend(drain_all(&mut router));
    let burst = router.now() + SimDuration::from_secs(1.0);
    for c in 0..CONVS {
        let prompt = 256 + 16 * (c % 9);
        let hist = prompt + 16 + c % 7;
        router.submit(req(10_000 + c as u64, c as u64, burst, 64, 24, hist));
    }
    responses.extend(drain_all(&mut router));
    let wall_s = t0.elapsed().as_secs_f64();
    let after = pool.stats();

    let modeled_serial_s = (after.modeled_serial - before.modeled_serial).as_secs_f64();
    let modeled_critical_s = (after.modeled_critical - before.modeled_critical).as_secs_f64();
    let events = sink.events();
    ScalingPoint {
        threads: width,
        wall_s,
        pool_tasks: after.tasks_total - before.tasks_total,
        modeled_serial_s,
        modeled_critical_s,
        modeled_stepping_speedup: if modeled_critical_s > 0.0 {
            modeled_serial_s / modeled_critical_s
        } else {
            1.0
        },
        modeled_wall_s: wall_s - modeled_serial_s + modeled_critical_s,
        trace_hash: format!("{:016x}", fnv1a(to_jsonl(&events).as_bytes())),
        trace_events: events.len(),
        completed: responses.len(),
    }
}

fn main() {
    let points: Vec<ScalingPoint> = WIDTHS
        .iter()
        .map(|&w| {
            eprintln!("bench_cluster_scaling: {REPLICAS} replicas at pool width {w} ...");
            let reps: Vec<ScalingPoint> = (0..REPS).map(|_| run_at_width(w)).collect();
            assert!(
                reps.iter().all(|p| p.trace_hash == reps[0].trace_hash),
                "trace hash diverged across reps at width {w}"
            );
            reps.into_iter()
                .max_by(|a, b| {
                    a.modeled_stepping_speedup
                        .total_cmp(&b.modeled_stepping_speedup)
                })
                .expect("REPS >= 1")
        })
        .collect();

    let deterministic = points.iter().all(|p| p.trace_hash == points[0].trace_hash);
    let meets_2x_modeled = points
        .iter()
        .find(|p| p.threads == 4)
        .is_some_and(|p| p.modeled_stepping_speedup >= 2.0);
    let report = Report {
        replicas: REPLICAS,
        conversations: CONVS,
        fault_seed: fault_seed(),
        points,
        deterministic,
        meets_2x_modeled,
    };

    print_table(
        &[
            "threads",
            "wall s",
            "modeled step x",
            "modeled wall s",
            "trace hash",
        ],
        &report
            .points
            .iter()
            .map(|p| {
                vec![
                    p.threads.to_string(),
                    format!("{:.2}", p.wall_s),
                    format!("{:.2}", p.modeled_stepping_speedup),
                    format!("{:.2}", p.modeled_wall_s),
                    p.trace_hash.clone(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    write_json("BENCH_cluster_scaling", &report);

    assert!(
        report.deterministic,
        "trace hash diverged across pool widths"
    );
    assert!(
        report.meets_2x_modeled,
        "4-thread modeled stepping speedup fell below 2x"
    );
}
