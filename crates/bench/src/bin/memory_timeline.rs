//! Cache-occupancy timeline: how the two tiers fill under load.
//!
//! Samples GPU KV-slot and CPU-tier usage every 10 simulated seconds
//! while serving a ShareGPT workload, for Pensieve (stateful, two
//! tiers), Pensieve (GPU cache only), and vLLM (stateless). The stateful
//! systems accumulate inactive conversations' contexts until the 25 %
//! watermark pushes chunks to the CPU tier (and eventually out); the
//! stateless baseline's usage tracks only the running batch.

use std::cell::RefCell;

use pensieve_bench::{print_table, write_json};
use pensieve_core::{EngineConfig, SimServingEngine};
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;
use pensieve_workload::driver::{run_closed_loop_probed, DriverConfig};
use serde::Serialize;

#[derive(Serialize)]
struct Sample {
    system: String,
    t: f64,
    gpu_tokens: usize,
    cpu_tokens: usize,
    running: usize,
    waiting: usize,
}

fn main() {
    println!("Cache occupancy timeline: OPT-13B, ShareGPT @ 6 req/s, 600 s of arrivals\n");
    let dataset = DatasetSpec::sharegpt();
    let rate = 6.0;
    let duration = 600.0;
    let convs = dataset.generate(((rate / dataset.mean_turns) * duration) as usize, 77);
    let samples: RefCell<Vec<Sample>> = RefCell::new(Vec::new());
    let mut summary_rows = Vec::new();
    let gpu_capacity = 52_428usize; // 40 GiB / 0.78125 MiB (OPT-13B).
    for cfg in [
        EngineConfig::pensieve(),
        EngineConfig::pensieve_gpu_cache(),
        EngineConfig::vllm(),
    ] {
        let name = cfg.name.clone();
        let mut engine =
            SimServingEngine::builder(cfg, ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1))
                .build();
        let _ = run_closed_loop_probed(
            &mut engine,
            &convs,
            &DriverConfig {
                request_rate: rate,
                mean_think_time: 60.0,
                seed: 9,
                system_prompt_tokens: 0,
            },
            10.0,
            |t, e| {
                samples.borrow_mut().push(Sample {
                    system: name.clone(),
                    t,
                    gpu_tokens: e.gpu_slots_used(),
                    cpu_tokens: e.cpu_tokens_used(),
                    running: e.running_requests(),
                    waiting: e.waiting_requests(),
                });
            },
        );
        let s = samples.borrow();
        let mine = s.iter().filter(|x| x.system == name);
        let peak_gpu = mine.clone().map(|x| x.gpu_tokens).max().unwrap_or(0);
        let peak_cpu = mine.clone().map(|x| x.cpu_tokens).max().unwrap_or(0);
        let mean_gpu = {
            let v: Vec<usize> = mine.map(|x| x.gpu_tokens).collect();
            v.iter().sum::<usize>() / v.len().max(1)
        };
        summary_rows.push(vec![
            name.clone(),
            peak_gpu.to_string(),
            mean_gpu.to_string(),
            peak_cpu.to_string(),
            format!("{:.0}%", 100.0 * peak_gpu as f64 / gpu_capacity as f64),
        ]);
    }
    print_table(
        &[
            "system",
            "peak GPU tokens",
            "mean GPU tokens",
            "peak CPU tokens",
            "peak GPU util",
        ],
        &summary_rows,
    );
    println!("\nFull 10 s-resolution timeline in results/memory_timeline.json");
    write_json("memory_timeline", &samples.into_inner());
}
