//! Figure 4: attention cost of a 32-token chunk vs context size,
//! normalized by the non-attention time of a transformer layer batch.
//!
//! This is the measurement behind Pensieve's eviction policy: attention
//! cost grows linearly with context, so leading chunks (small context)
//! are cheaper to recompute than trailing ones (§3.2, §4.3.1).

use pensieve_bench::{print_table, write_json};
use pensieve_model::{CostModel, HardwareSpec, ModelConfig, SeqShape};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    context: usize,
    attention_us: f64,
    normalized: f64,
}

fn main() {
    println!(
        "Figure 4: attention time for a 32-token chunk vs context size,\nnormalized by per-layer non-attention time (OPT-13B, A100)\n"
    );
    let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
    let non_attention = cost.non_attention_layer_time(32);
    let mut rows = Vec::new();
    let mut json = Vec::new();
    for p in 5..=14 {
        let context = 1usize << p;
        let attn = cost.attention_layer_time(SeqShape {
            query_len: 32,
            context_len: context,
        });
        let normalized = attn / non_attention;
        rows.push(vec![
            context.to_string(),
            format!("{:.1}", attn.as_micros()),
            format!("{:.3}", normalized),
        ]);
        json.push(Row {
            context,
            attention_us: attn.as_micros(),
            normalized,
        });
    }
    print_table(&["context", "attention (us)", "normalized"], &rows);
    let first = json.first().expect("rows");
    let last = json.last().expect("rows");
    println!(
        "\nLinear growth: context x{} -> normalized cost x{:.0} (paper: cost grows linearly with context).",
        last.context / first.context,
        last.normalized / first.normalized
    );
    write_json("fig4", &json);
}
