//! Ablation: eviction shape — Pensieve vs the Table-3 alternatives.
//!
//! Compares Pensieve's retention-value chunks against classic LRU chunks,
//! CachedAttention-style whole-conversation eviction, and SGLang-style
//! trailing-end eviction, all inside the same engine (only the policy
//! differs). OPT-13B on ShareGPT.

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::config::PolicyKind;
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Ablation: eviction granularity/location (Table 3 shapes), OPT-13B, ShareGPT\n");
    let policies = [
        (PolicyKind::RetentionValue, "retention-value (Pensieve)"),
        (PolicyKind::Lru, "LRU chunks"),
        (
            PolicyKind::WholeConversation,
            "whole-conversation (CachedAttention)",
        ),
        (PolicyKind::TrailingEnd, "trailing-end (SGLang/RAGCache)"),
    ];
    let mut specs = Vec::new();
    for (policy, name) in policies {
        for rate in [4.0f64, 6.0, 8.0] {
            let mut engine = EngineConfig::pensieve();
            engine.policy = policy;
            engine.name = name.to_owned();
            specs.push(PointSpec {
                engine,
                model: ModelConfig::opt_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 49,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}%", p.cache.cpu_hit_rate * 100.0),
                p.cache.recomputed_tokens.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "policy",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "cpu hit rate",
            "recomputed",
        ],
        &rows,
    );
    write_json("ablate_eviction", &points);
}
