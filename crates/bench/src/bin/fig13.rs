//! Figure 13: unified vs separate prefill/generation scheduling.
//!
//! Llama 2-13B on ShareGPT. Unified batching executes one invocation
//! mixing phases; the separate variant pays two invocations per iteration
//! and runs prefills with poor batch company (§6.5).

use pensieve_bench::{print_table, run_sweep, write_json, PointSpec};
use pensieve_core::EngineConfig;
use pensieve_model::{HardwareSpec, ModelConfig};
use pensieve_workload::dataset::DatasetSpec;

fn main() {
    println!("Figure 13: unified vs separate scheduling, Llama 2-13B, ShareGPT\n");
    let rates = [2.0f64, 4.0, 6.0, 8.0, 10.0, 12.0];
    let mut specs = Vec::new();
    for engine in [
        EngineConfig::pensieve(),
        EngineConfig::pensieve_non_unified(),
    ] {
        for &rate in &rates {
            specs.push(PointSpec {
                engine: engine.clone(),
                model: ModelConfig::llama2_13b(),
                hardware: HardwareSpec::azure_nc_a100(1),
                dataset: DatasetSpec::sharegpt(),
                request_rate: rate,
                think_time: 60.0,
                seed: 44,
                system_prompt_tokens: 0,
            });
        }
    }
    let points = run_sweep(specs);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.system.clone(),
                format!("{:.1}", p.request_rate),
                format!("{:.2}", p.summary.throughput_rps),
                format!("{:.1}", p.summary.p90_normalized * 1e3),
                format!("{:.1}", p.summary.mean_ttft * 1e3),
            ]
        })
        .collect();
    print_table(
        &[
            "system",
            "offered req/s",
            "tp (req/s)",
            "p90 norm (ms/tok)",
            "mean ttft (ms)",
        ],
        &rows,
    );
    write_json("fig13", &points);
}
