//! Figure 3: prefill cost vs generation cost as history grows.
//!
//! A batch of 32 requests each prefills a 32-token prompt (with or
//! without a cached history of varying size) and then generates 200
//! tokens. Stateless systems re-prefill the history each turn; the
//! prefill cost overtakes the entire 200-step generation phase once the
//! history reaches a few thousand tokens.

use pensieve_bench::{print_table, write_json};
use pensieve_model::{BatchShape, CostModel, HardwareSpec, ModelConfig, SeqShape};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    history: usize,
    prefill_recompute_ms: f64,
    prefill_cached_ms: f64,
    generation_200_ms: f64,
}

fn main() {
    println!(
        "Figure 3: execution time for a batch of 32 requests, 32-token prompts,\n200 generation steps, OPT-13B on one A100\n"
    );
    let cost = CostModel::new(ModelConfig::opt_13b(), HardwareSpec::azure_nc_a100(1));
    const BATCH: usize = 32;
    const PROMPT: usize = 32;
    const STEPS: usize = 200;

    let mut rows = Vec::new();
    let mut json = Vec::new();
    for history in [0usize, 512, 1024, 2048, 4096, 6144, 8192] {
        // Stateless: the history is recomputed together with the prompt.
        let recompute =
            cost.batch_step_time(&BatchShape::new(vec![
                SeqShape::prefill(history + PROMPT, 0);
                BATCH
            ]));
        // Stateful: only the prompt is prefetched on top of cached history.
        let cached = cost.batch_step_time(&BatchShape::new(vec![
            SeqShape::prefill(PROMPT, history);
            BATCH
        ]));
        // Generation: 200 steps, context growing from history+prompt.
        let mut generation = pensieve_model::SimDuration::ZERO;
        for step in 0..STEPS {
            generation += cost.batch_step_time(&BatchShape::new(vec![
                SeqShape::decode(
                    history + PROMPT + step + 1
                );
                BATCH
            ]));
        }
        rows.push(vec![
            history.to_string(),
            format!("{:.1}", recompute.as_millis()),
            format!("{:.1}", cached.as_millis()),
            format!("{:.1}", generation.as_millis()),
        ]);
        json.push(Row {
            history,
            prefill_recompute_ms: recompute.as_millis(),
            prefill_cached_ms: cached.as_millis(),
            generation_200_ms: generation.as_millis(),
        });
    }
    print_table(
        &[
            "history",
            "prefill w/ recompute (ms)",
            "prefill w/ cache (ms)",
            "generation x200 (ms)",
        ],
        &rows,
    );
    let crossover = json
        .iter()
        .find(|r| r.prefill_recompute_ms > r.generation_200_ms)
        .map(|r| r.history);
    match crossover {
        Some(h) => println!(
            "\nPrefill-with-recompute overtakes the whole generation phase at history ~{h} tokens\n(the paper's motivation: history recompute dominates)."
        ),
        None => println!("\nNo crossover in the swept range."),
    }
    write_json("fig3", &json);
}
