//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;

use pensieve_model::SimTime;

/// Error from scheduling an event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ScheduleError {
    /// The requested time lies before the queue's clock — events may not
    /// rewrite history.
    InPast {
        /// The requested (past) event time.
        at: SimTime,
        /// The queue's current clock.
        now: SimTime,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::InPast { at, now } => {
                write!(f, "scheduling into the past: {at} < {now}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// An event queue delivering payloads in `(time, insertion order)` order.
///
/// Ties at the same instant are broken by insertion sequence, which makes
/// simulations reproducible regardless of payload contents.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert for earliest-first ordering.
        // total_cmp keeps Ord total without a panicking unwrap.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulation time (the time of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past — events may not rewrite history.
    /// Use [`EventQueue::try_schedule`] where a past time is a recoverable
    /// condition rather than a programmer bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        if let Err(e) = self.try_schedule(at, payload) {
            // lint:allow(r1-panic): documented panic contract — rewriting
            // history is a programmer bug; try_schedule is the typed
            // alternative for recoverable cases.
            panic!("{e}");
        }
    }

    /// Schedules `payload` at absolute time `at`, rejecting past times
    /// with a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InPast`] if `at` precedes the queue's
    /// clock; the queue is unchanged.
    pub fn try_schedule(&mut self, at: SimTime, payload: E) -> Result<(), ScheduleError> {
        if at < self.now {
            return Err(ScheduleError::InPast { at, now: self.now });
        }
        self.heap.push(Entry {
            time: at,
            seq: self.seq,
            payload,
        });
        self.seq += 1;
        Ok(())
    }

    /// Pops the earliest event, advancing the clock to its time.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let e = self.heap.pop()?;
        self.now = e.time;
        Some((e.time, e.payload))
    }

    /// Time of the next event without popping it.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::SimDuration;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn delivers_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(3.0), "c");
        q.schedule(t(1.0), "a");
        q.schedule(t(2.0), "b");
        assert_eq!(q.pop(), Some((t(1.0), "a")));
        assert_eq!(q.now(), t(1.0));
        assert_eq!(q.pop(), Some((t(2.0), "b")));
        assert_eq!(q.pop(), Some((t(3.0), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), 1);
        q.schedule(t(1.0), 2);
        q.schedule(t(1.0), 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_events() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), ());
        q.pop();
        q.schedule(t(1.0), ());
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(t(5.0), ());
        assert_eq!(q.peek_time(), Some(t(5.0)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn try_schedule_returns_typed_error_for_past_events() {
        let mut q = EventQueue::new();
        q.schedule(t(2.0), 1);
        q.pop();
        assert_eq!(
            q.try_schedule(t(1.0), 2),
            Err(ScheduleError::InPast {
                at: t(1.0),
                now: t(2.0)
            })
        );
        assert!(q.is_empty(), "failed schedule must not enqueue");
        assert_eq!(q.try_schedule(t(3.0), 3), Ok(()));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(t(1.0), "a");
        let (now, _) = q.pop().unwrap();
        q.schedule(now + SimDuration::from_secs(0.5), "b");
        q.schedule(now + SimDuration::from_secs(0.2), "c");
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }
}
