//! Deep-storage device models: simulated NVMe SSD and cold NFS/object
//! store tiers below the CPU cache.
//!
//! CachedAttention-style hierarchies (arXiv 2403.19708) extend the paper's
//! GPU+CPU cache with slower-but-larger tiers so that idle sessions can be
//! demoted instead of dropped. [`StorageDevice`] models one such tier the
//! same way [`crate::pcie::PcieLink`] models the host link: a fixed access
//! latency plus a bandwidth term, with independent FIFO busy horizons per
//! direction. Reads and writes never contend with each other (modern NVMe
//! queues and NFS clients overlap them), but each direction is serialized —
//! a new access starts at `max(now, direction busy-until)`.
//!
//! Faults are polled per read opportunity from the shared seeded
//! [`FaultInjector`] stream: a *stall* ([`FaultKind::ColdReadStall`])
//! delivers the data late by the configured penalty, while a *failure*
//! ([`FaultKind::ColdReadFailure`]) consumes the device time but delivers
//! nothing — the caller falls back to dropped-chunk recomputation.

use std::fmt;

use pensieve_model::{SimDuration, SimTime};

use crate::faults::{FaultInjector, FaultKind};

/// Shape of one storage tier: access latencies and sustained bandwidths.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageDeviceSpec {
    /// Human-readable tier name (`"nvme"`, `"nfs"`), used in traces.
    pub name: &'static str,
    /// Fixed per-read access latency (seek / RPC round trip).
    pub read_latency: SimDuration,
    /// Fixed per-write access latency.
    pub write_latency: SimDuration,
    /// Sustained read bandwidth in bytes per second.
    pub read_bandwidth: f64,
    /// Sustained write bandwidth in bytes per second.
    pub write_bandwidth: f64,
}

impl StorageDeviceSpec {
    /// A datacenter NVMe SSD: ~80 µs access, GB/s-class streaming.
    #[must_use]
    pub fn nvme() -> Self {
        StorageDeviceSpec {
            name: "nvme",
            read_latency: SimDuration::from_secs(80e-6),
            write_latency: SimDuration::from_secs(30e-6),
            read_bandwidth: 3.5e9,
            write_bandwidth: 2.5e9,
        }
    }

    /// A shared NFS / object store: millisecond RPCs, network-bound
    /// streaming. Slow, but effectively unbounded and restart-durable.
    #[must_use]
    pub fn nfs() -> Self {
        StorageDeviceSpec {
            name: "nfs",
            read_latency: SimDuration::from_secs(2e-3),
            write_latency: SimDuration::from_secs(3e-3),
            read_bandwidth: 1.2e9,
            write_bandwidth: 0.8e9,
        }
    }
}

/// Typed failure of a storage read.
///
/// Like a failed DMA, a failed read still occupied the device for its
/// full duration; `completes` reports when the failure is detected so the
/// caller can charge the wasted time before recomputing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageReadError {
    /// Bytes that were requested.
    pub bytes: usize,
    /// When the failure is detected (the would-be completion time).
    pub completes: SimTime,
}

impl fmt::Display for StorageReadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cold storage read failed ({} bytes)", self.bytes)
    }
}

impl std::error::Error for StorageReadError {}

/// One storage tier; tracks per-direction busy horizons and byte totals.
#[derive(Debug, Clone)]
pub struct StorageDevice {
    spec: StorageDeviceSpec,
    read_busy_until: SimTime,
    write_busy_until: SimTime,
    read_bytes: u64,
    write_bytes: u64,
}

impl StorageDevice {
    /// Creates a device from its spec.
    #[must_use]
    pub fn new(spec: StorageDeviceSpec) -> Self {
        StorageDevice {
            spec,
            read_busy_until: SimTime::ZERO,
            write_busy_until: SimTime::ZERO,
            read_bytes: 0,
            write_bytes: 0,
        }
    }

    /// The spec this device was built from.
    #[must_use]
    pub fn spec(&self) -> &StorageDeviceSpec {
        &self.spec
    }

    /// Enqueues a read of `bytes` at `now`; returns `(start, completion)`.
    /// Zero-byte reads complete immediately without occupying the device.
    pub fn schedule_read(&mut self, now: SimTime, bytes: usize) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (now, now);
        }
        self.read_bytes += bytes as u64;
        let start = now.max(self.read_busy_until);
        let dur = self.spec.read_latency
            + SimDuration::from_secs(bytes as f64 / self.spec.read_bandwidth);
        let end = start + dur;
        self.read_busy_until = end;
        (start, end)
    }

    /// Enqueues a write of `bytes` at `now`; returns `(start, completion)`.
    /// Zero-byte writes complete immediately without occupying the device.
    pub fn schedule_write(&mut self, now: SimTime, bytes: usize) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (now, now);
        }
        self.write_bytes += bytes as u64;
        let start = now.max(self.write_busy_until);
        let dur = self.spec.write_latency
            + SimDuration::from_secs(bytes as f64 / self.spec.write_bandwidth);
        let end = start + dur;
        self.write_busy_until = end;
        (start, end)
    }

    /// Fault-aware [`StorageDevice::schedule_read`]: rolls `faults` for a
    /// stall (data delivered late by the configured penalty) and then a
    /// failure before committing the read. With `faults: None` this is
    /// exactly `schedule_read`.
    ///
    /// # Errors
    ///
    /// [`StorageReadError`] when the failure roll fires; the device time
    /// is consumed either way and the caller must recompute the data.
    pub fn try_read(
        &mut self,
        now: SimTime,
        bytes: usize,
        faults: Option<&mut FaultInjector>,
    ) -> Result<(SimTime, SimTime), StorageReadError> {
        let Some(faults) = faults else {
            return Ok(self.schedule_read(now, bytes));
        };
        if bytes == 0 {
            return Ok((now, now));
        }
        let stalled = faults.roll(FaultKind::ColdReadStall);
        let failed = faults.roll(FaultKind::ColdReadFailure);
        let penalty = faults.config().cold_stall_penalty;
        let (start, mut end) = self.schedule_read(now, bytes);
        if stalled {
            // A degraded device (GC pause, congested NFS server) delivers
            // late; the tail holds the read queue busy too.
            end += penalty;
            self.read_busy_until = self.read_busy_until.max(end);
        }
        if failed {
            return Err(StorageReadError {
                bytes,
                completes: end,
            });
        }
        Ok((start, end))
    }

    /// When the read queue becomes idle.
    #[must_use]
    pub fn read_busy_until(&self) -> SimTime {
        self.read_busy_until
    }

    /// When the write queue becomes idle.
    #[must_use]
    pub fn write_busy_until(&self) -> SimTime {
        self.write_busy_until
    }

    /// Total bytes read so far.
    #[must_use]
    pub fn read_total_bytes(&self) -> u64 {
        self.read_bytes
    }

    /// Total bytes written so far.
    #[must_use]
    pub fn write_total_bytes(&self) -> u64 {
        self.write_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultConfig;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    const GB: usize = 1_000_000_000;

    #[test]
    fn reads_are_fifo_and_bandwidth_bound() {
        let mut d = StorageDevice::new(StorageDeviceSpec::nvme());
        let (s1, e1) = d.schedule_read(t(0.0), 3_500_000_000);
        let (s2, e2) = d.schedule_read(t(0.0), 3_500_000_000);
        assert_eq!(s1, t(0.0));
        assert!((e1.as_secs() - 1.0).abs() < 0.01, "3.5 GB at 3.5 GB/s");
        assert_eq!(s2, e1, "second read queues behind the first");
        assert!((e2.as_secs() - 2.0).abs() < 0.02);
    }

    #[test]
    fn reads_and_writes_do_not_contend() {
        let mut d = StorageDevice::new(StorageDeviceSpec::nfs());
        let (_, re) = d.schedule_read(t(0.0), GB);
        let (ws, _) = d.schedule_write(t(0.0), GB);
        assert_eq!(ws, t(0.0), "write starts despite the in-flight read");
        assert!(re > t(0.0));
    }

    #[test]
    fn nfs_is_slower_than_nvme() {
        let mut nvme = StorageDevice::new(StorageDeviceSpec::nvme());
        let mut nfs = StorageDevice::new(StorageDeviceSpec::nfs());
        let (_, e_nvme) = nvme.schedule_read(t(0.0), GB);
        let (_, e_nfs) = nfs.schedule_read(t(0.0), GB);
        assert!(e_nfs > e_nvme, "cold tier must cost more than the SSD");
    }

    #[test]
    fn zero_bytes_complete_instantly() {
        let mut d = StorageDevice::new(StorageDeviceSpec::nvme());
        let (s, e) = d.schedule_read(t(1.0), 0);
        assert_eq!(s, e);
        assert_eq!(d.read_busy_until(), SimTime::ZERO);
        assert_eq!(d.read_total_bytes(), 0);
    }

    #[test]
    fn try_read_without_injector_matches_schedule_read() {
        let mut a = StorageDevice::new(StorageDeviceSpec::nfs());
        let mut b = StorageDevice::new(StorageDeviceSpec::nfs());
        let want = a.schedule_read(t(0.0), GB);
        let got = b.try_read(t(0.0), GB, None).unwrap();
        assert_eq!(got, want);
        assert_eq!(a.read_total_bytes(), b.read_total_bytes());
    }

    #[test]
    fn stalled_read_delivers_late() {
        let mut cfg = FaultConfig::disabled(1);
        cfg.cold_read_stall = 1.0;
        cfg.cold_stall_penalty = SimDuration::from_secs(0.5);
        let mut inj = FaultInjector::new(cfg);
        let mut calm = StorageDevice::new(StorageDeviceSpec::nfs());
        let mut d = StorageDevice::new(StorageDeviceSpec::nfs());
        let (_, calm_end) = calm.schedule_read(t(0.0), GB);
        let (_, end) = d.try_read(t(0.0), GB, Some(&mut inj)).unwrap();
        assert!((end.as_secs() - calm_end.as_secs() - 0.5).abs() < 1e-9);
        assert_eq!(d.read_busy_until(), end, "the stall holds the queue");
        assert_eq!(inj.counters().cold_read_stalls, 1);
    }

    #[test]
    fn failed_read_consumes_device_time() {
        let mut cfg = FaultConfig::disabled(2);
        cfg.cold_read_failure = 1.0;
        let mut inj = FaultInjector::new(cfg);
        let mut d = StorageDevice::new(StorageDeviceSpec::nfs());
        let err = d.try_read(t(0.0), GB, Some(&mut inj)).unwrap_err();
        assert!(err.completes > t(0.0), "the failed read spent device time");
        assert_eq!(d.read_busy_until(), err.completes);
        assert_eq!(inj.counters().cold_read_failures, 1);
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut d = StorageDevice::new(StorageDeviceSpec::nvme());
        d.schedule_read(t(0.0), 100);
        d.schedule_read(t(0.0), 200);
        d.schedule_write(t(0.0), 50);
        assert_eq!(d.read_total_bytes(), 300);
        assert_eq!(d.write_total_bytes(), 50);
    }
}
