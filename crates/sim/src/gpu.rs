//! GPU execution timing, including pipelined swap-in overlap (§4.3.3).
//!
//! [`GpuTimer`] turns a batch shape into an execution duration using the
//! roofline cost model, and computes how much of a swap-in transfer is
//! hidden by layer-by-layer pipelining: transfers are issued per layer and
//! layer *i*'s attention kernel only waits for layer *i*'s KV-tokens, so a
//! transfer slower than one layer's compute stalls only the difference.

use pensieve_model::{BatchShape, CostModel, SimDuration, SimTime};
use pensieve_obs::{Recorder as _, SharedRecorder, TraceEvent};

/// Times batched model invocations on one (possibly tensor-parallel) GPU
/// group.
#[derive(Debug, Clone)]
pub struct GpuTimer {
    cost: CostModel,
    /// Fixed per-iteration host-side overhead (scheduling, launch, sampling
    /// bookkeeping). Runtime-dependent: vLLM/Pensieve pay more than a
    /// compiled TensorRT engine.
    iteration_overhead: SimDuration,
    /// Multiplier (< 1.0 speeds up) on non-attention compute, modelling
    /// graph-compiled runtimes (TensorRT-LLM's operator fusion).
    compute_scale: f64,
    /// Passive trace sink; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
}

impl GpuTimer {
    /// Creates a timer with PyTorch-runtime-like defaults.
    #[must_use]
    pub fn new(cost: CostModel) -> Self {
        GpuTimer {
            cost,
            iteration_overhead: SimDuration::from_micros(300.0),
            compute_scale: 1.0,
            recorder: None,
        }
    }

    /// Attaches a trace recorder (used by
    /// [`GpuTimer::batch_time_with_swap_in_at`]). Recording is passive:
    /// timings are identical with or without it.
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// Overrides the per-iteration overhead (compiled runtimes pay less).
    #[must_use]
    pub fn with_iteration_overhead(mut self, overhead: SimDuration) -> Self {
        self.iteration_overhead = overhead;
        self
    }

    /// Scales all device compute by `scale` (e.g. 0.8 for a fused,
    /// graph-compiled runtime).
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not in `(0, 1.5]`.
    #[must_use]
    pub fn with_compute_scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.5, "implausible compute scale");
        self.compute_scale = scale;
        self
    }

    /// The underlying cost model.
    #[must_use]
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Execution time of one batched iteration (no transfers).
    #[must_use]
    pub fn batch_time(&self, batch: &BatchShape) -> SimDuration {
        if batch.is_empty() {
            return SimDuration::ZERO;
        }
        self.cost.batch_step_time(batch) * self.compute_scale + self.iteration_overhead
    }

    /// Execution time of an iteration that must first swap in
    /// `swap_in_bytes` of KV-tokens, with per-layer pipelining.
    ///
    /// Models the paper's scheme: the transfer is split evenly across
    /// layers and issued ahead of each layer's attention kernel; layer `i`
    /// can only start attending once its slice has arrived. Returns the
    /// total iteration time including any stall.
    #[must_use]
    pub fn batch_time_with_swap_in(
        &self,
        batch: &BatchShape,
        swap_in_bytes: usize,
        pcie_bandwidth: f64,
    ) -> SimDuration {
        let compute = self.batch_time(batch);
        if swap_in_bytes == 0 || batch.is_empty() {
            return compute;
        }
        let layers = self.cost.config().num_layers;
        let per_layer_compute = compute / layers as f64;
        let per_layer_transfer =
            SimDuration::from_secs(swap_in_bytes as f64 / pcie_bandwidth / layers as f64);
        // Layer i's slice finishes transferring at (i+1) * t_x; layer i's
        // compute starts at max(prev finish, slice arrival).
        let mut finish = SimDuration::ZERO;
        for i in 0..layers {
            let arrival = per_layer_transfer * (i + 1) as f64;
            finish = finish.max(arrival) + per_layer_compute;
        }
        finish
    }

    /// [`GpuTimer::batch_time_with_swap_in`] that also emits a
    /// [`TraceEvent::PipelinedSwapIn`] (timestamped `now`, the iteration
    /// start) when a recorder is attached and a transfer actually
    /// overlapped compute. The returned duration is identical to the
    /// unrecorded variant.
    #[must_use]
    pub fn batch_time_with_swap_in_at(
        &self,
        batch: &BatchShape,
        swap_in_bytes: usize,
        pcie_bandwidth: f64,
        now: SimTime,
    ) -> SimDuration {
        let total = self.batch_time_with_swap_in(batch, swap_in_bytes, pcie_bandwidth);
        if self.recorder.enabled() && swap_in_bytes > 0 && !batch.is_empty() {
            self.recorder.record(TraceEvent::PipelinedSwapIn {
                at: now,
                bytes: swap_in_bytes as u64,
                compute: self.batch_time(batch),
                total,
            });
        }
        total
    }

    /// The stall (extra latency beyond pure compute) a swap-in causes.
    #[must_use]
    pub fn swap_in_stall(
        &self,
        batch: &BatchShape,
        swap_in_bytes: usize,
        pcie_bandwidth: f64,
    ) -> SimDuration {
        self.batch_time_with_swap_in(batch, swap_in_bytes, pcie_bandwidth)
            .saturating_sub(self.batch_time(batch))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pensieve_model::{HardwareSpec, ModelConfig, SeqShape};

    fn timer() -> GpuTimer {
        GpuTimer::new(CostModel::new(
            ModelConfig::opt_13b(),
            HardwareSpec::azure_nc_a100(1),
        ))
    }

    #[test]
    fn batch_time_includes_overhead() {
        let t = timer();
        let batch = BatchShape::new(vec![SeqShape::decode(100)]);
        let bare = t.cost_model().batch_step_time(&batch);
        assert!(t.batch_time(&batch) > bare);
        assert_eq!(t.batch_time(&BatchShape::default()), SimDuration::ZERO);
    }

    #[test]
    fn compute_scale_speeds_up() {
        let batch = BatchShape::new(vec![SeqShape::prefill(512, 0)]);
        let slow = timer().batch_time(&batch);
        let fast = timer().with_compute_scale(0.8).batch_time(&batch);
        assert!(fast < slow);
    }

    /// A small swap-in is fully hidden behind per-layer compute.
    #[test]
    fn small_swap_in_fully_overlapped() {
        let t = timer();
        let batch = BatchShape::new(vec![SeqShape::prefill(512, 1024)]);
        // 1024 tokens of history ~ 0.8 GB; at 25 GB/s spread over 40
        // layers, each slice transfers faster than a layer computes.
        let stall = t.swap_in_stall(&batch, 800_000_000, 25e9);
        let compute = t.batch_time(&batch);
        assert!(
            stall.as_secs() < 0.15 * compute.as_secs(),
            "stall {stall} vs compute {compute}"
        );
    }

    /// A transfer much slower than compute degenerates to transfer-bound.
    #[test]
    fn huge_swap_in_becomes_transfer_bound() {
        let t = timer();
        let batch = BatchShape::new(vec![SeqShape::decode(64)]);
        let bytes = 10_000_000_000usize; // 10 GB over a tiny decode step.
        let total = t.batch_time_with_swap_in(&batch, bytes, 25e9);
        let transfer = SimDuration::from_secs(bytes as f64 / 25e9);
        assert!(total >= transfer);
        assert!(total.as_secs() < transfer.as_secs() * 1.2);
    }

    /// Tensor-parallel timers speed up compute but keep the same
    /// pipelining semantics.
    #[test]
    fn tensor_parallel_timer_scales() {
        let cfg = ModelConfig::llama2_70b();
        let t1 = GpuTimer::new(CostModel::new(cfg.clone(), HardwareSpec::azure_nc_a100(1)));
        let t4 = GpuTimer::new(CostModel::new(cfg, HardwareSpec::azure_nc_a100(4)));
        let batch = BatchShape::new(vec![SeqShape::prefill(2048, 0)]);
        assert!(t4.batch_time(&batch) < t1.batch_time(&batch));
        // Per-GPU swap bytes shrink with sharding, so the pipelined total
        // shrinks too.
        let b1 = t1.batch_time_with_swap_in(&batch, 2_000_000_000, 25e9);
        let b4 = t4.batch_time_with_swap_in(&batch, 500_000_000, 25e9);
        assert!(b4 < b1);
    }

    #[test]
    fn zero_swap_is_pure_compute() {
        let t = timer();
        let batch = BatchShape::new(vec![SeqShape::decode(100)]);
        assert_eq!(
            t.batch_time_with_swap_in(&batch, 0, 25e9),
            t.batch_time(&batch)
        );
        assert_eq!(t.swap_in_stall(&batch, 0, 25e9), SimDuration::ZERO);
    }

    /// Pipelining beats waiting for the full transfer before computing.
    #[test]
    fn pipelining_hides_latency_vs_serial() {
        let t = timer();
        let batch = BatchShape::new(vec![SeqShape::prefill(128, 2048)]);
        let bytes = 1_600_000_000usize;
        let pipelined = t.batch_time_with_swap_in(&batch, bytes, 25e9);
        let serial = t.batch_time(&batch) + SimDuration::from_secs(bytes as f64 / 25e9);
        assert!(pipelined < serial);
    }
}
