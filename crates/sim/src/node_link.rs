//! Simulated inter-node fabric for KV handoff between replicas.
//!
//! When a cluster router migrates a conversation, its CPU-tier KV chunks
//! stream over the datacenter network to the target replica (the DéjàVu
//! KV-streaming primitive). [`NodeLink`] models that fabric the same way
//! [`crate::pcie::PcieLink`] models the host link: a single FIFO busy
//! horizon, per-transfer setup latency, and bandwidth-proportional
//! duration — all pure functions of the call sequence, so cluster runs
//! stay bit-deterministic.
//!
//! Unlike PCIe, a network stream can *lose* a chunk (a dropped flow, a
//! checksum mismatch at the receiver). Losses are drawn from a seeded
//! SplitMix64 stream, one roll per non-empty chunk; a lost chunk still
//! consumes its full link time — the bytes were sent, the receiver just
//! cannot use them — and the router falls back to Pensieve's dropped-token
//! recomputation for it.

use std::fmt;

use pensieve_model::{SimDuration, SimTime};

/// Seeded link-partition model: the fabric alternates between available
/// stretches and outage windows, both drawn from a SplitMix64 stream
/// dedicated to partitions (distinct from the loss stream, so enabling
/// partitions does not perturb which chunks are lost).
///
/// Window lengths are the configured means scaled by independent uniform
/// factors in `[0.5, 1.5)`. An outage only defers transfer *starts*: a
/// chunk already on the wire when a window opens completes normally —
/// the FIFO busy horizon is preserved, starts stay monotonic.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionSpec {
    /// Seed for the partition-window stream.
    pub seed: u64,
    /// Mean length of an available stretch between outages.
    pub mean_available: SimDuration,
    /// Mean length of one outage window.
    pub mean_outage: SimDuration,
}

/// Shape of the simulated inter-node link.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeLinkSpec {
    /// Sustained bandwidth in bytes/second.
    pub bandwidth: f64,
    /// Per-chunk setup latency (RTT + framing).
    pub latency: SimDuration,
    /// Probability that any one streamed chunk is lost in transit.
    pub loss_per_chunk: f64,
    /// Seed for the loss stream.
    pub seed: u64,
    /// Optional seeded unavailability windows (transient partitions).
    pub partition: Option<PartitionSpec>,
}

impl NodeLinkSpec {
    /// A lossless 25 Gb Ethernet fabric (~3.125 GB/s, 50 µs setup).
    #[must_use]
    pub fn datacenter_25g() -> Self {
        NodeLinkSpec {
            bandwidth: 3.125e9,
            latency: SimDuration::from_micros(50.0),
            loss_per_chunk: 0.0,
            seed: 0,
            partition: None,
        }
    }

    /// The 25 Gb fabric with a per-chunk loss probability, for exercising
    /// the recompute-fallback path.
    #[must_use]
    pub fn lossy_25g(loss_per_chunk: f64, seed: u64) -> Self {
        NodeLinkSpec {
            loss_per_chunk,
            seed,
            ..NodeLinkSpec::datacenter_25g()
        }
    }

    /// The 25 Gb fabric with seeded partition windows.
    #[must_use]
    pub fn partitioned_25g(partition: PartitionSpec) -> Self {
        NodeLinkSpec {
            partition: Some(partition),
            ..NodeLinkSpec::datacenter_25g()
        }
    }
}

/// A chunk lost in transit. The link time was consumed anyway; `completes`
/// is when the receiver detects the loss.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkLost {
    /// Bytes that were streamed and discarded.
    pub bytes: usize,
    /// When the loss is observed.
    pub completes: SimTime,
}

impl fmt::Display for ChunkLost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inter-node stream lost a {}-byte chunk", self.bytes)
    }
}

impl std::error::Error for ChunkLost {}

/// The inter-node link: one FIFO busy horizon shared by all migrations.
#[derive(Debug, Clone)]
pub struct NodeLink {
    spec: NodeLinkSpec,
    busy_until: SimTime,
    /// SplitMix64 state for loss rolls.
    state: u64,
    /// SplitMix64 state for partition windows (independent of losses).
    pstate: u64,
    /// End of the last seeded partition window generated so far; windows
    /// are generated lazily, forward-only — sound because transfer starts
    /// are monotonic (the busy horizon never moves backward).
    window_frontier: SimTime,
    /// The next seeded outage window, once generated and not yet passed.
    next_window: Option<(SimTime, SimTime)>,
    /// Externally scheduled outages (chaos faults), sorted by start.
    forced_outages: Vec<(SimTime, SimTime)>,
    streamed_bytes: u64,
    lost_chunks: u64,
}

impl NodeLink {
    /// Creates a link from a spec.
    #[must_use]
    pub fn new(spec: NodeLinkSpec) -> Self {
        // Pre-mix the seeds so that seeds 0 and 1 diverge immediately.
        // The partition stream uses its own constant so the same seed
        // value drives decorrelated loss and partition schedules.
        let state = spec.seed ^ 0x9E37_79B9_7F4A_7C15;
        let pstate = spec
            .partition
            .as_ref()
            .map_or(0, |p| p.seed ^ 0xC2B2_AE3D_27D4_EB4F);
        NodeLink {
            spec,
            busy_until: SimTime::ZERO,
            state,
            pstate,
            window_frontier: SimTime::ZERO,
            next_window: None,
            forced_outages: Vec::new(),
            streamed_bytes: 0,
            lost_chunks: 0,
        }
    }

    /// The link spec.
    #[must_use]
    pub fn spec(&self) -> &NodeLinkSpec {
        &self.spec
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// SplitMix64 step on the partition stream.
    fn next_pu64(&mut self) -> u64 {
        self.pstate = self.pstate.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.pstate;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform factor in `[0.5, 1.5)` from the partition stream.
    fn next_pfactor(&mut self) -> f64 {
        0.5 + (self.next_pu64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Schedules a forced outage window `[start, end)` — a chaos-injected
    /// partition, independent of the seeded windows. Transfers starting
    /// inside the window are deferred to `end`; a transfer already on the
    /// wire is unaffected.
    pub fn add_outage(&mut self, start: SimTime, end: SimTime) {
        if end <= start {
            return;
        }
        self.forced_outages.push((start, end));
        self.forced_outages
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
    }

    /// Defers `t` past every outage window (seeded and forced) that
    /// contains it, repeating until `t` lands in an available stretch.
    /// Seeded windows are generated lazily ahead of `t`; the generator
    /// only moves forward, which is sound because transfer starts are
    /// monotonic.
    fn defer_past_outages(&mut self, mut t: SimTime) -> SimTime {
        loop {
            let before = t;
            // Forced windows are sorted by start, so one ordered pass
            // also resolves chained windows that begin after a deferral.
            for &(s, e) in &self.forced_outages {
                if s <= t && t < e {
                    t = e;
                }
            }
            if let Some(p) = self.spec.partition.clone() {
                loop {
                    let (ws, we) = match self.next_window {
                        Some(w) => w,
                        None => {
                            let gap = p.mean_available * self.next_pfactor();
                            let dur = p.mean_outage * self.next_pfactor();
                            let ws = self.window_frontier + gap;
                            let we = ws + dur;
                            self.window_frontier = we;
                            self.next_window = Some((ws, we));
                            (ws, we)
                        }
                    };
                    if we <= t {
                        // Window fully in the past: consume and generate
                        // the next one.
                        self.next_window = None;
                        continue;
                    }
                    if ws <= t {
                        t = we;
                        self.next_window = None;
                        continue;
                    }
                    break; // next window is strictly in the future
                }
            }
            if t == before {
                return t;
            }
        }
    }

    /// Streams one KV chunk of `bytes` at time `now`.
    ///
    /// Returns the `(start, completion)` instants; the chunk is usable at
    /// the target from `completion`. Zero-byte chunks complete instantly
    /// without occupying the link or consuming a loss roll.
    ///
    /// # Errors
    ///
    /// [`ChunkLost`] when the loss stream fires; the link time is consumed
    /// either way and the caller must recompute the chunk at the target.
    pub fn stream_chunk(
        &mut self,
        now: SimTime,
        bytes: usize,
    ) -> Result<(SimTime, SimTime), ChunkLost> {
        if bytes == 0 {
            return Ok((now, now));
        }
        let start = self.defer_past_outages(now.max(self.busy_until));
        let dur = self.spec.latency + SimDuration::from_secs(bytes as f64 / self.spec.bandwidth);
        let end = start + dur;
        self.busy_until = end;
        self.streamed_bytes += bytes as u64;
        // One roll per chunk, fired or not, so the loss schedule is a pure
        // function of the seed and the chunk count.
        let lost = self.next_f64() < self.spec.loss_per_chunk;
        if lost {
            self.lost_chunks += 1;
            return Err(ChunkLost {
                bytes,
                completes: end,
            });
        }
        Ok((start, end))
    }

    /// When the link becomes idle.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Total bytes put on the wire (including lost chunks).
    #[must_use]
    pub fn streamed_bytes(&self) -> u64 {
        self.streamed_bytes
    }

    /// Chunks lost in transit so far.
    #[must_use]
    pub fn lost_chunks(&self) -> u64 {
        self.lost_chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn streams_are_fifo() {
        let mut l = NodeLink::new(NodeLinkSpec::datacenter_25g());
        let gb = 3_125_000_000usize; // one second on the wire
        let (s1, e1) = l.stream_chunk(t(0.0), gb).unwrap();
        let (s2, e2) = l.stream_chunk(t(0.0), gb).unwrap();
        assert_eq!(s1, t(0.0));
        assert!((e1.as_secs() - 1.0).abs() < 0.01);
        assert_eq!(s2, e1, "second chunk queues behind the first");
        assert!((e2.as_secs() - 2.0).abs() < 0.02);
        assert_eq!(l.streamed_bytes(), 2 * gb as u64);
    }

    #[test]
    fn zero_bytes_complete_instantly() {
        let mut l = NodeLink::new(NodeLinkSpec::datacenter_25g());
        let (s, e) = l.stream_chunk(t(1.0), 0).unwrap();
        assert_eq!(s, e);
        assert_eq!(l.busy_until(), SimTime::ZERO);
    }

    #[test]
    fn certain_loss_consumes_link_time() {
        let mut l = NodeLink::new(NodeLinkSpec::lossy_25g(1.0, 3));
        let err = l.stream_chunk(t(0.0), 3_125_000_000).unwrap_err();
        assert!((err.completes.as_secs() - 1.0).abs() < 0.01);
        assert_eq!(l.busy_until(), err.completes);
        assert_eq!(l.lost_chunks(), 1);
        assert_eq!(l.streamed_bytes(), 3_125_000_000);
    }

    #[test]
    fn forced_outage_defers_starts_but_not_inflight_transfers() {
        let mut l = NodeLink::new(NodeLinkSpec::datacenter_25g());
        l.add_outage(t(0.5), t(2.0));
        let gb = 3_125_000_000usize; // one second on the wire
        let (s1, e1) = l.stream_chunk(t(0.0), gb).unwrap();
        assert_eq!(s1, t(0.0));
        assert!(e1 < t(2.0), "in-flight transfer completes through outage");
        // The next chunk would start at ~1.0, inside the window: deferred.
        let (s2, _) = l.stream_chunk(t(0.0), 1024).unwrap();
        assert_eq!(s2, t(2.0));
        // Chained windows: a start deferred into a later window keeps
        // moving until it lands in an available stretch.
        let mut l2 = NodeLink::new(NodeLinkSpec::datacenter_25g());
        l2.add_outage(t(0.0), t(1.0));
        l2.add_outage(t(1.0), t(3.0));
        let (s3, _) = l2.stream_chunk(t(0.5), 1024).unwrap();
        assert_eq!(s3, t(3.0));
    }

    #[test]
    fn seeded_partitions_are_deterministic_and_fifo() {
        let spec = NodeLinkSpec::partitioned_25g(PartitionSpec {
            seed: 9,
            mean_available: SimDuration::from_secs(0.01),
            mean_outage: SimDuration::from_secs(0.005),
        });
        let run = |spec: &NodeLinkSpec| {
            let mut l = NodeLink::new(spec.clone());
            (0..64)
                .map(|i| l.stream_chunk(t(i as f64 * 0.01), 1 << 20).unwrap())
                .collect::<Vec<_>>()
        };
        let a = run(&spec);
        assert_eq!(a, run(&spec), "same seed, same schedule");
        for w in a.windows(2) {
            assert!(w[1].0 >= w[0].1, "starts stay FIFO behind the horizon");
        }
        let calm = run(&NodeLinkSpec::datacenter_25g());
        assert!(
            a.iter().zip(&calm).any(|(p, c)| p.0 > c.0),
            "some start must be deferred by a partition window"
        );
        let mut other = spec.clone();
        other.partition.as_mut().unwrap().seed = 10;
        assert_ne!(a, run(&other), "different partition seeds diverge");
    }

    #[test]
    fn partition_stream_does_not_perturb_loss_schedule() {
        let losses = |partition: Option<PartitionSpec>| {
            let mut spec = NodeLinkSpec::lossy_25g(0.3, 7);
            spec.partition = partition;
            let mut l = NodeLink::new(spec);
            (0..64)
                .map(|_| l.stream_chunk(t(0.0), 1024).is_err())
                .collect::<Vec<_>>()
        };
        let with = losses(Some(PartitionSpec {
            seed: 7,
            mean_available: SimDuration::from_secs(0.001),
            mean_outage: SimDuration::from_secs(0.001),
        }));
        assert_eq!(losses(None), with, "partitions must not change losses");
    }

    #[test]
    fn loss_schedule_is_seed_deterministic() {
        let run = |seed: u64| {
            let mut l = NodeLink::new(NodeLinkSpec::lossy_25g(0.3, seed));
            (0..64)
                .map(|_| l.stream_chunk(t(0.0), 1024).is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds diverge");
        let losses = run(7).iter().filter(|&&x| x).count();
        assert!(losses > 5 && losses < 40, "loss count {losses} near 30%");
    }
}
