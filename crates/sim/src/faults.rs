//! Deterministic, seedable fault injection for the serving stack.
//!
//! Real deployments of a two-tier KV cache see partial failures the paper
//! does not model: DMA engines abort or time out, host memory holding
//! swapped-out KV chunks gets reclaimed or corrupted, slot allocators
//! transiently fail, and tensor-parallel workers stall or crash. The
//! [`FaultInjector`] draws those events from a seeded SplitMix64 stream so
//! that an entire chaos run is reproducible from a single `u64` seed: the
//! same seed yields the same fault schedule, which lets the integration
//! tests assert that recovery produces *bit-identical* outputs to the
//! fault-free run.
//!
//! The injector is purely a decision source — it never mutates the
//! component it targets. Each subsystem polls it at its natural fault
//! point ([`crate::pcie::PcieLink::try_schedule`] for transfers, the cache
//! manager for CPU-tier chunk loss, the engine for allocation faults and
//! worker stalls) and implements its own recovery.

use std::fmt;

use pensieve_model::{SimDuration, SimTime};

/// The kinds of fault the injector can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A PCIe DMA transfer aborts; the link time is consumed but no data
    /// arrives. Retryable.
    PcieTransferFailure,
    /// A PCIe DMA transfer hangs past its deadline; detected only after a
    /// timeout penalty. Retryable.
    PcieTimeout,
    /// A swapped-out chunk in the CPU tier is lost (e.g. host memory
    /// reclaimed). The chunk must be recomputed from raw tokens.
    CpuChunkLoss,
    /// A swapped-out chunk's bytes are silently corrupted; detected by
    /// checksum on swap-in, then treated as lost.
    CpuChunkCorruption,
    /// The GPU KV slot allocator transiently fails even though capacity
    /// accounting says space exists. Recovered by eviction backpressure.
    GpuAllocFailure,
    /// A tensor-parallel worker shard stalls for a bounded time; the
    /// iteration completes late.
    WorkerStall,
    /// A tensor-parallel worker shard dies; detected via channel
    /// disconnect and surfaced as a typed error.
    WorkerCrash,
    /// A deep-tier (SSD/cold) read stalls: the data arrives, but late by
    /// the configured penalty (device GC pause, congested NFS server).
    ColdReadStall,
    /// A deep-tier read fails outright; the device time is consumed but
    /// nothing arrives. The chunks are recomputed from raw tokens.
    ColdReadFailure,
    /// A session-manifest write to the cold tier is torn mid-write; the
    /// truncated manifest fails its checksum on read and the session
    /// rehydration falls back to recomputation.
    TornManifestWrite,
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultKind::PcieTransferFailure => "pcie-transfer-failure",
            FaultKind::PcieTimeout => "pcie-timeout",
            FaultKind::CpuChunkLoss => "cpu-chunk-loss",
            FaultKind::CpuChunkCorruption => "cpu-chunk-corruption",
            FaultKind::GpuAllocFailure => "gpu-alloc-failure",
            FaultKind::WorkerStall => "worker-stall",
            FaultKind::WorkerCrash => "worker-crash",
            FaultKind::ColdReadStall => "cold-read-stall",
            FaultKind::ColdReadFailure => "cold-read-failure",
            FaultKind::TornManifestWrite => "torn-manifest-write",
        };
        f.write_str(s)
    }
}

/// Per-fault-kind probabilities (per opportunity) and penalty parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a PCIe transfer aborts.
    pub pcie_failure: f64,
    /// Probability that a PCIe transfer times out.
    pub pcie_timeout: f64,
    /// Probability (per opportunity) that a CPU-tier chunk is lost.
    pub cpu_chunk_loss: f64,
    /// Probability (per opportunity) that a CPU-tier chunk is corrupted.
    pub cpu_chunk_corruption: f64,
    /// Probability that a GPU slot allocation transiently fails.
    pub gpu_alloc_failure: f64,
    /// Probability that a worker shard stalls during an iteration.
    pub worker_stall: f64,
    /// Probability that a worker shard crashes (functional engines only;
    /// the timing engine treats crashes as stalls).
    pub worker_crash: f64,
    /// Probability that a deep-tier read stalls (delivers late).
    pub cold_read_stall: f64,
    /// Probability that a deep-tier read fails (delivers nothing).
    pub cold_read_failure: f64,
    /// Probability that a cold-tier manifest write is torn.
    pub torn_manifest_write: f64,
    /// Extra wall-clock consumed before a timed-out transfer is detected.
    pub timeout_penalty: SimDuration,
    /// Duration of one worker stall.
    pub stall_duration: SimDuration,
    /// Extra delivery delay of one stalled deep-tier read.
    pub cold_stall_penalty: SimDuration,
}

impl FaultConfig {
    /// A configuration that never fires; useful as a base to override.
    #[must_use]
    pub fn disabled(seed: u64) -> Self {
        FaultConfig {
            seed,
            pcie_failure: 0.0,
            pcie_timeout: 0.0,
            cpu_chunk_loss: 0.0,
            cpu_chunk_corruption: 0.0,
            gpu_alloc_failure: 0.0,
            worker_stall: 0.0,
            worker_crash: 0.0,
            cold_read_stall: 0.0,
            cold_read_failure: 0.0,
            torn_manifest_write: 0.0,
            timeout_penalty: SimDuration::from_secs(10e-3),
            stall_duration: SimDuration::from_secs(5e-3),
            cold_stall_penalty: SimDuration::from_secs(20e-3),
        }
    }

    /// A moderately hostile preset used by the chaos tests: every fault
    /// kind fires regularly but recovery keeps the workload completing.
    #[must_use]
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            pcie_failure: 0.10,
            pcie_timeout: 0.05,
            cpu_chunk_loss: 0.05,
            cpu_chunk_corruption: 0.05,
            gpu_alloc_failure: 0.05,
            worker_stall: 0.05,
            worker_crash: 0.0,
            ..FaultConfig::disabled(seed)
        }
    }
}

/// Counts of injected faults, by kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// PCIe transfers aborted.
    pub pcie_failures: u64,
    /// PCIe transfers timed out.
    pub pcie_timeouts: u64,
    /// CPU-tier chunks lost.
    pub cpu_chunk_losses: u64,
    /// CPU-tier chunks corrupted.
    pub cpu_chunk_corruptions: u64,
    /// GPU slot allocations failed.
    pub gpu_alloc_failures: u64,
    /// Worker stalls injected.
    pub worker_stalls: u64,
    /// Worker crashes injected.
    pub worker_crashes: u64,
    /// Deep-tier read stalls injected.
    pub cold_read_stalls: u64,
    /// Deep-tier read failures injected.
    pub cold_read_failures: u64,
    /// Torn cold-tier manifest writes injected.
    pub torn_manifest_writes: u64,
}

impl FaultCounters {
    /// Total faults injected across all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pcie_failures
            + self.pcie_timeouts
            + self.cpu_chunk_losses
            + self.cpu_chunk_corruptions
            + self.gpu_alloc_failures
            + self.worker_stalls
            + self.worker_crashes
            + self.cold_read_stalls
            + self.cold_read_failures
            + self.torn_manifest_writes
    }
}

/// The deterministic fault source.
///
/// Each [`FaultInjector::roll`] advances the SplitMix64 stream exactly
/// once, regardless of whether the fault fires, so the decision sequence
/// is a pure function of the seed and the *number* of opportunities —
/// recovery code that retries does not perturb later draws in surprising
/// ways beyond consuming its own retry rolls.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    cfg: FaultConfig,
    state: u64,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Creates an injector from a fault configuration.
    #[must_use]
    pub fn new(cfg: FaultConfig) -> Self {
        // Pre-mix the seed so that seeds 0 and 1 diverge immediately.
        let state = cfg.seed ^ 0x6A09_E667_F3BC_C909;
        FaultInjector {
            cfg,
            state,
            counters: FaultCounters::default(),
        }
    }

    /// The configuration this injector draws from.
    #[must_use]
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Faults injected so far.
    #[must_use]
    pub fn counters(&self) -> &FaultCounters {
        &self.counters
    }

    /// SplitMix64 step.
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Rolls for one fault opportunity of `kind`; true means the fault
    /// fires (and is counted).
    pub fn roll(&mut self, kind: FaultKind) -> bool {
        let p = match kind {
            FaultKind::PcieTransferFailure => self.cfg.pcie_failure,
            FaultKind::PcieTimeout => self.cfg.pcie_timeout,
            FaultKind::CpuChunkLoss => self.cfg.cpu_chunk_loss,
            FaultKind::CpuChunkCorruption => self.cfg.cpu_chunk_corruption,
            FaultKind::GpuAllocFailure => self.cfg.gpu_alloc_failure,
            FaultKind::WorkerStall => self.cfg.worker_stall,
            FaultKind::WorkerCrash => self.cfg.worker_crash,
            FaultKind::ColdReadStall => self.cfg.cold_read_stall,
            FaultKind::ColdReadFailure => self.cfg.cold_read_failure,
            FaultKind::TornManifestWrite => self.cfg.torn_manifest_write,
        };
        let fired = self.next_f64() < p;
        if fired {
            let c = &mut self.counters;
            match kind {
                FaultKind::PcieTransferFailure => c.pcie_failures += 1,
                FaultKind::PcieTimeout => c.pcie_timeouts += 1,
                FaultKind::CpuChunkLoss => c.cpu_chunk_losses += 1,
                FaultKind::CpuChunkCorruption => c.cpu_chunk_corruptions += 1,
                FaultKind::GpuAllocFailure => c.gpu_alloc_failures += 1,
                FaultKind::WorkerStall => c.worker_stalls += 1,
                FaultKind::WorkerCrash => c.worker_crashes += 1,
                FaultKind::ColdReadStall => c.cold_read_stalls += 1,
                FaultKind::ColdReadFailure => c.cold_read_failures += 1,
                FaultKind::TornManifestWrite => c.torn_manifest_writes += 1,
            }
        }
        fired
    }

    /// Deterministic uniform index in `[0, n)`, for choosing which chunk
    /// or shard a fault targets.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn pick(&mut self, n: usize) -> usize {
        assert!(n > 0, "pick from an empty set");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }
}

/// Cluster-level fault kinds, scheduled at absolute simulated times.
///
/// Unlike the per-opportunity [`FaultKind`] rolls (polled by a component
/// at its natural fault point), these are *time-triggered*: a chaos
/// harness generates a [`FaultSchedule`] up front and the cluster router
/// applies each event when its clock reaches the trigger — faults land
/// mid-generation without the test hand-placing them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ClusterFaultKind {
    /// Replica `replica` fail-stops: KV state lost, in-flight requests
    /// orphaned and re-routed.
    ReplicaCrash {
        /// Index of the replica that dies.
        replica: usize,
    },
    /// The inter-node fabric partitions for `duration`: transfers cannot
    /// start during the window (in-flight transfers complete).
    LinkPartition {
        /// Length of the unavailability window.
        duration: SimDuration,
    },
}

/// One scheduled cluster fault: `kind` fires when the clock reaches `at`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScheduledFault {
    /// Trigger time.
    pub at: SimTime,
    /// What happens.
    pub kind: ClusterFaultKind,
}

/// A seeded, pre-generated schedule of cluster faults, sorted by trigger
/// time. The same `(seed, shape)` always yields the same schedule, so a
/// chaos run is reproducible from one `u64` — the same contract as
/// [`FaultInjector`], lifted from per-opportunity rolls to wall-clock
/// triggers.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSchedule {
    events: Vec<ScheduledFault>,
}

impl FaultSchedule {
    /// Generates a schedule of `crashes` replica crashes and `partitions`
    /// link partitions, all triggered at uniform times in `(0, window)`.
    ///
    /// Crash targets are distinct replica indices and at most
    /// `replicas - 1` crashes are generated, so at least one replica
    /// always survives — a schedule that kills the whole cluster proves
    /// nothing about recovery. Partition lengths are `mean_outage` scaled
    /// by a uniform factor in `[0.5, 1.5)`.
    #[must_use]
    pub fn generate(
        seed: u64,
        replicas: usize,
        window: SimDuration,
        crashes: usize,
        partitions: usize,
        mean_outage: SimDuration,
    ) -> Self {
        // A dedicated SplitMix64 stream with its own pre-mix constant, so
        // schedules are decorrelated from `FaultInjector` rolls on the
        // same seed.
        fn next_u64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
        fn next_f64(state: &mut u64) -> f64 {
            (next_u64(state) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
        let mut state = seed ^ 0x3C6E_F372_FE94_F82B;

        let mut events = Vec::new();
        let mut survivors: Vec<usize> = (0..replicas).collect();
        for _ in 0..crashes.min(replicas.saturating_sub(1)) {
            let at = SimTime::ZERO + window * next_f64(&mut state);
            let pick =
                ((u128::from(next_u64(&mut state)) * survivors.len() as u128) >> 64) as usize;
            let replica = survivors.remove(pick);
            events.push(ScheduledFault {
                at,
                kind: ClusterFaultKind::ReplicaCrash { replica },
            });
        }
        for _ in 0..partitions {
            let at = SimTime::ZERO + window * next_f64(&mut state);
            let duration = mean_outage * (0.5 + next_f64(&mut state));
            events.push(ScheduledFault {
                at,
                kind: ClusterFaultKind::LinkPartition { duration },
            });
        }
        // Deterministic order: by time, crashes before partitions at ties,
        // then by target index / length.
        events.sort_by(|a, b| {
            a.at.total_cmp(&b.at).then_with(|| {
                let rank = |k: &ClusterFaultKind| match *k {
                    ClusterFaultKind::ReplicaCrash { replica } => (0usize, replica as f64),
                    ClusterFaultKind::LinkPartition { duration } => (1, duration.as_secs()),
                };
                let (ra, ka) = rank(&a.kind);
                let (rb, kb) = rank(&b.kind);
                ra.cmp(&rb).then(ka.total_cmp(&kb))
            })
        });
        FaultSchedule { events }
    }

    /// The scheduled events, sorted by trigger time.
    #[must_use]
    pub fn events(&self) -> &[ScheduledFault] {
        &self.events
    }

    /// True if the schedule contains no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule() {
        let cfg = FaultConfig::chaos(7);
        let mut a = FaultInjector::new(cfg.clone());
        let mut b = FaultInjector::new(cfg);
        let kinds = [
            FaultKind::PcieTransferFailure,
            FaultKind::CpuChunkLoss,
            FaultKind::GpuAllocFailure,
            FaultKind::WorkerStall,
        ];
        for i in 0..1000 {
            let k = kinds[i % kinds.len()];
            assert_eq!(a.roll(k), b.roll(k), "draw {i} diverged");
        }
        assert_eq!(a.counters(), b.counters());
        assert!(a.counters().total() > 0, "chaos preset must fire");
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(FaultConfig::chaos(1));
        let mut b = FaultInjector::new(FaultConfig::chaos(2));
        let seq = |inj: &mut FaultInjector| -> Vec<bool> {
            (0..256)
                .map(|_| inj.roll(FaultKind::PcieTransferFailure))
                .collect()
        };
        assert_ne!(seq(&mut a), seq(&mut b));
    }

    #[test]
    fn disabled_never_fires() {
        let mut inj = FaultInjector::new(FaultConfig::disabled(3));
        for _ in 0..1000 {
            assert!(!inj.roll(FaultKind::CpuChunkLoss));
            assert!(!inj.roll(FaultKind::WorkerCrash));
        }
        assert_eq!(inj.counters().total(), 0);
    }

    #[test]
    fn fire_rate_tracks_probability() {
        let mut cfg = FaultConfig::disabled(11);
        cfg.pcie_failure = 0.25;
        let mut inj = FaultInjector::new(cfg);
        let fired = (0..20_000)
            .filter(|_| inj.roll(FaultKind::PcieTransferFailure))
            .count();
        let rate = fired as f64 / 20_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
        assert_eq!(inj.counters().pcie_failures, fired as u64);
    }

    #[test]
    fn fault_schedule_is_seed_deterministic_and_sorted() {
        let gen = |seed| {
            FaultSchedule::generate(
                seed,
                4,
                SimDuration::from_secs(100.0),
                3,
                2,
                SimDuration::from_secs(0.5),
            )
        };
        let a = gen(7);
        assert_eq!(a, gen(7), "same seed, same schedule");
        assert_ne!(a, gen(8), "different seeds diverge");
        assert_eq!(a.events().len(), 5);
        for w in a.events().windows(2) {
            assert!(w[0].at <= w[1].at, "events sorted by trigger time");
        }
        for e in a.events() {
            assert!(e.at > SimTime::ZERO && e.at < SimTime::from_secs(100.0));
        }
    }

    #[test]
    fn fault_schedule_always_leaves_a_survivor() {
        for seed in 0..32 {
            let s = FaultSchedule::generate(
                seed,
                3,
                SimDuration::from_secs(10.0),
                99,
                0,
                SimDuration::from_secs(1.0),
            );
            let crashed: Vec<usize> = s
                .events()
                .iter()
                .filter_map(|e| match e.kind {
                    ClusterFaultKind::ReplicaCrash { replica } => Some(replica),
                    ClusterFaultKind::LinkPartition { .. } => None,
                })
                .collect();
            assert_eq!(crashed.len(), 2, "at most replicas - 1 crashes");
            let mut distinct = crashed.clone();
            distinct.sort_unstable();
            distinct.dedup();
            assert_eq!(distinct.len(), crashed.len(), "targets are distinct");
            assert!(crashed.iter().all(|&r| r < 3));
        }
    }

    #[test]
    fn pick_is_in_bounds_and_deterministic() {
        let mut a = FaultInjector::new(FaultConfig::chaos(5));
        let mut b = FaultInjector::new(FaultConfig::chaos(5));
        for _ in 0..1000 {
            let x = a.pick(7);
            assert!(x < 7);
            assert_eq!(x, b.pick(7));
        }
    }
}
