//! PCIe host-link model with duplex contention and retrieval priority (§5).
//!
//! The paper measured an 18–20 % throughput drop in *both* directions when
//! CPU→GPU and GPU→CPU transfers overlap, and therefore makes eviction
//! (device-to-host) *wait* while any swap-in (host-to-device) is in
//! flight. [`PcieLink`] models both behaviours:
//!
//! * [`DuplexMode::PrioritizeRetrieval`] — the paper's waiting mechanism:
//!   device-to-host copies do not start until pending host-to-device
//!   traffic has drained; each direction then runs at full bandwidth.
//! * [`DuplexMode::Naive`] — both directions run whenever requested; a
//!   transfer that overlaps opposite-direction traffic runs at the
//!   penalized duplex bandwidth. (Approximation: the penalty applies to a
//!   transfer's entire duration if the opposite direction is busy when it
//!   starts — accurate for the sustained-pressure regimes the experiments
//!   exercise.)
//!
//! Each direction is a FIFO: a new transfer starts at
//! `max(now, direction busy-until)`.

use std::fmt;

use pensieve_model::{PcieSpec, SimDuration, SimTime};
use pensieve_obs::{Recorder as _, SharedRecorder, SwapDir, TraceEvent};

use crate::faults::{FaultInjector, FaultKind};

/// Typed failure of a scheduled transfer.
///
/// A failed or timed-out DMA still occupied the link for its full
/// duration — the failure is only detected at (or past) the would-be
/// completion instant, which `completes` reports so callers can charge
/// the wasted time before retrying.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TransferError {
    /// The DMA aborted; no data arrived.
    Failed {
        /// Transfer direction.
        dir: Direction,
        /// Bytes that were requested.
        bytes: usize,
        /// When the failure is detected (the would-be completion time).
        completes: SimTime,
    },
    /// The DMA hung and was killed after a timeout penalty.
    TimedOut {
        /// Transfer direction.
        dir: Direction,
        /// Bytes that were requested.
        bytes: usize,
        /// When the timeout fires (completion time plus the penalty).
        completes: SimTime,
    },
}

impl TransferError {
    /// The instant at which the failure is observed by the host.
    #[must_use]
    pub fn completes(&self) -> SimTime {
        match self {
            TransferError::Failed { completes, .. } | TransferError::TimedOut { completes, .. } => {
                *completes
            }
        }
    }
}

impl fmt::Display for TransferError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransferError::Failed { dir, bytes, .. } => {
                write!(f, "PCIe transfer failed ({dir:?}, {bytes} bytes)")
            }
            TransferError::TimedOut { dir, bytes, .. } => {
                write!(f, "PCIe transfer timed out ({dir:?}, {bytes} bytes)")
            }
        }
    }
}

impl std::error::Error for TransferError {}

/// Transfer direction over the host link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// CPU -> GPU (swap-in / retrieval).
    HostToDevice,
    /// GPU -> CPU (swap-out / eviction).
    DeviceToHost,
}

/// Duplex scheduling discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplexMode {
    /// The paper's optimization: evictions wait for in-flight retrievals.
    PrioritizeRetrieval,
    /// Full-duplex with the measured contention penalty.
    Naive,
}

/// The host link; tracks per-direction busy horizons.
#[derive(Debug, Clone)]
pub struct PcieLink {
    spec: PcieSpec,
    mode: DuplexMode,
    h2d_busy_until: SimTime,
    d2h_busy_until: SimTime,
    /// Total bytes moved, per direction, for reporting.
    h2d_bytes: u64,
    d2h_bytes: u64,
    /// Passive trace sink; `None` (the default) records nothing.
    recorder: Option<SharedRecorder>,
}

impl PcieLink {
    /// Creates a link from a hardware spec.
    #[must_use]
    pub fn new(spec: PcieSpec, mode: DuplexMode) -> Self {
        PcieLink {
            spec,
            mode,
            h2d_busy_until: SimTime::ZERO,
            d2h_busy_until: SimTime::ZERO,
            h2d_bytes: 0,
            d2h_bytes: 0,
            recorder: None,
        }
    }

    /// Attaches a trace recorder. Recording is passive: every schedule
    /// decision is identical with or without it.
    pub fn set_recorder(&mut self, recorder: Option<SharedRecorder>) {
        self.recorder = recorder;
    }

    /// The scheduling discipline in use.
    #[must_use]
    pub fn mode(&self) -> DuplexMode {
        self.mode
    }

    /// Enqueues a transfer of `bytes` in `dir` at time `now`; returns the
    /// `(start, completion)` instants.
    ///
    /// Zero-byte transfers complete immediately without occupying the link.
    pub fn schedule(&mut self, now: SimTime, dir: Direction, bytes: usize) -> (SimTime, SimTime) {
        if bytes == 0 {
            return (now, now);
        }
        match dir {
            Direction::HostToDevice => self.h2d_bytes += bytes as u64,
            Direction::DeviceToHost => self.d2h_bytes += bytes as u64,
        }
        let (own_busy, other_busy) = match dir {
            Direction::HostToDevice => (self.h2d_busy_until, self.d2h_busy_until),
            Direction::DeviceToHost => (self.d2h_busy_until, self.h2d_busy_until),
        };
        let mut start = now.max(own_busy);
        let bandwidth = match self.mode {
            DuplexMode::PrioritizeRetrieval => {
                if dir == Direction::DeviceToHost {
                    // Evictions wait for in-flight retrievals to drain.
                    start = start.max(other_busy);
                }
                // Retrievals never wait, and with eviction held back each
                // direction sees full bandwidth.
                self.spec.bandwidth
            }
            DuplexMode::Naive => {
                if other_busy > start {
                    self.spec.duplex_bandwidth()
                } else {
                    self.spec.bandwidth
                }
            }
        };
        let dur = self.spec.latency + SimDuration::from_secs(bytes as f64 / bandwidth);
        let end = start + dur;
        match dir {
            Direction::HostToDevice => self.h2d_busy_until = end,
            Direction::DeviceToHost => self.d2h_busy_until = end,
        }
        if self.recorder.enabled() {
            // Failed/timed-out DMAs (see `try_schedule`) also pass through
            // here and are recorded: they occupied the bus either way, so
            // the trace reflects honest link occupancy.
            let wire_dir = match dir {
                Direction::HostToDevice => SwapDir::In,
                Direction::DeviceToHost => SwapDir::Out,
            };
            self.recorder.record(TraceEvent::SwapStart {
                at: start,
                dir: wire_dir,
                bytes: bytes as u64,
            });
            self.recorder.record(TraceEvent::SwapEnd {
                at: end,
                dir: wire_dir,
                bytes: bytes as u64,
            });
        }
        (start, end)
    }

    /// Fault-aware [`PcieLink::schedule`]: rolls `faults` for a timeout
    /// and then an abort before committing the transfer.
    ///
    /// Failure semantics mirror real DMA engines: a failed transfer
    /// consumed the link for its full duration (the abort is detected at
    /// completion), and a timed-out transfer additionally holds its
    /// direction busy for the configured timeout penalty. With
    /// `faults: None` this is exactly [`PcieLink::schedule`].
    ///
    /// # Errors
    ///
    /// [`TransferError::Failed`] or [`TransferError::TimedOut`] when the
    /// injector fires; the link time is consumed either way.
    pub fn try_schedule(
        &mut self,
        now: SimTime,
        dir: Direction,
        bytes: usize,
        faults: Option<&mut FaultInjector>,
    ) -> Result<(SimTime, SimTime), TransferError> {
        let Some(faults) = faults else {
            return Ok(self.schedule(now, dir, bytes));
        };
        if bytes == 0 {
            return Ok((now, now));
        }
        let timed_out = faults.roll(FaultKind::PcieTimeout);
        let failed = !timed_out && faults.roll(FaultKind::PcieTransferFailure);
        let penalty = faults.config().timeout_penalty;
        let (start, end) = self.schedule(now, dir, bytes);
        if timed_out {
            // The hung DMA holds its direction busy until the watchdog
            // kills it.
            let completes = end + penalty;
            match dir {
                Direction::HostToDevice => self.h2d_busy_until = completes,
                Direction::DeviceToHost => self.d2h_busy_until = completes,
            }
            return Err(TransferError::TimedOut {
                dir,
                bytes,
                completes,
            });
        }
        if failed {
            return Err(TransferError::Failed {
                dir,
                bytes,
                completes: end,
            });
        }
        Ok((start, end))
    }

    /// When the given direction becomes idle.
    #[must_use]
    pub fn busy_until(&self, dir: Direction) -> SimTime {
        match dir {
            Direction::HostToDevice => self.h2d_busy_until,
            Direction::DeviceToHost => self.d2h_busy_until,
        }
    }

    /// Total bytes transferred host-to-device so far.
    #[must_use]
    pub fn h2d_total_bytes(&self) -> u64 {
        self.h2d_bytes
    }

    /// Total bytes transferred device-to-host so far.
    #[must_use]
    pub fn d2h_total_bytes(&self) -> u64 {
        self.d2h_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(mode: DuplexMode) -> PcieLink {
        PcieLink::new(PcieSpec::gen4_x16(), mode)
    }

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs(secs)
    }

    const GB: usize = 1_000_000_000;

    #[test]
    fn single_direction_is_fifo() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let (s1, e1) = l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        let (s2, e2) = l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        assert_eq!(s1, t(0.0));
        assert!((e1.as_secs() - 1.0).abs() < 0.01);
        assert_eq!(s2, e1, "second transfer queues behind the first");
        assert!((e2.as_secs() - 2.0).abs() < 0.02);
    }

    #[test]
    fn eviction_waits_for_retrieval_under_priority_mode() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let (_, h2d_end) = l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        let (d2h_start, d2h_end) = l.schedule(t(0.1), Direction::DeviceToHost, 25 * GB);
        assert_eq!(d2h_start, h2d_end, "eviction deferred until swap-in done");
        // But it then runs at full bandwidth.
        assert!((d2h_end.as_secs() - d2h_start.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn retrieval_never_waits_for_eviction() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        l.schedule(t(0.0), Direction::DeviceToHost, 25 * GB);
        let (s, e) = l.schedule(t(0.1), Direction::HostToDevice, 25 * GB);
        assert_eq!(s, t(0.1));
        assert!((e.as_secs() - 1.1).abs() < 0.01);
    }

    #[test]
    fn naive_mode_pays_duplex_penalty() {
        let mut l = link(DuplexMode::Naive);
        l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        let (s, e) = l.schedule(t(0.0), Direction::DeviceToHost, 25 * GB);
        assert_eq!(s, t(0.0), "naive mode starts immediately");
        let dur = e.as_secs() - s.as_secs();
        // 25 GB at 81% of 25 GB/s ~= 1.235 s.
        assert!(dur > 1.2 && dur < 1.3, "duplex-penalized duration {dur}");
    }

    #[test]
    fn naive_mode_full_speed_when_other_direction_idle() {
        let mut l = link(DuplexMode::Naive);
        let (_, e) = l.schedule(t(0.0), Direction::DeviceToHost, 25 * GB);
        assert!((e.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn zero_bytes_complete_instantly() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let (s, e) = l.schedule(t(1.0), Direction::HostToDevice, 0);
        assert_eq!(s, e);
        assert_eq!(l.busy_until(Direction::HostToDevice), SimTime::ZERO);
    }

    /// A retrieval burst arriving mid-eviction queue: each direction
    /// remains FIFO and the priorities compose across several transfers.
    #[test]
    fn mixed_sequences_compose() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let (_, in1) = l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        let (_, in2) = l.schedule(t(0.0), Direction::HostToDevice, 25 * GB);
        // Eviction issued while two retrievals queue: starts after both.
        let (out_start, _) = l.schedule(t(0.5), Direction::DeviceToHost, GB);
        assert_eq!(out_start, in2);
        assert!(in2 > in1);
        // A third retrieval still queues only behind its own direction.
        let (in3_start, _) = l.schedule(t(0.6), Direction::HostToDevice, GB);
        assert_eq!(in3_start, in2);
    }

    #[test]
    fn try_schedule_without_injector_matches_schedule() {
        let mut a = link(DuplexMode::PrioritizeRetrieval);
        let mut b = link(DuplexMode::PrioritizeRetrieval);
        let want = a.schedule(t(0.0), Direction::HostToDevice, GB);
        let got = b
            .try_schedule(t(0.0), Direction::HostToDevice, GB, None)
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(a.h2d_total_bytes(), b.h2d_total_bytes());
    }

    #[test]
    fn failed_transfer_consumes_link_time() {
        use crate::faults::{FaultConfig, FaultInjector};
        let mut cfg = FaultConfig::disabled(1);
        cfg.pcie_failure = 1.0;
        let mut inj = FaultInjector::new(cfg);
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let err = l
            .try_schedule(t(0.0), Direction::HostToDevice, 25 * GB, Some(&mut inj))
            .unwrap_err();
        assert!(matches!(err, TransferError::Failed { .. }));
        // The aborted DMA still held the link for its full duration.
        assert!((l.busy_until(Direction::HostToDevice).as_secs() - 1.0).abs() < 0.01);
        assert_eq!(err.completes(), l.busy_until(Direction::HostToDevice));
        assert_eq!(inj.counters().pcie_failures, 1);
    }

    #[test]
    fn timed_out_transfer_adds_penalty_to_busy_horizon() {
        use crate::faults::{FaultConfig, FaultInjector};
        let mut cfg = FaultConfig::disabled(2);
        cfg.pcie_timeout = 1.0;
        cfg.timeout_penalty = SimDuration::from_secs(0.5);
        let mut inj = FaultInjector::new(cfg);
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        let err = l
            .try_schedule(t(0.0), Direction::HostToDevice, 25 * GB, Some(&mut inj))
            .unwrap_err();
        assert!(matches!(err, TransferError::TimedOut { .. }));
        assert!((err.completes().as_secs() - 1.5).abs() < 0.01);
        assert_eq!(l.busy_until(Direction::HostToDevice), err.completes());
        assert_eq!(inj.counters().pcie_timeouts, 1);
    }

    #[test]
    fn byte_counters_accumulate() {
        let mut l = link(DuplexMode::PrioritizeRetrieval);
        l.schedule(t(0.0), Direction::HostToDevice, 100);
        l.schedule(t(0.0), Direction::HostToDevice, 200);
        l.schedule(t(0.0), Direction::DeviceToHost, 50);
        assert_eq!(l.h2d_total_bytes(), 300);
        assert_eq!(l.d2h_total_bytes(), 50);
    }
}
