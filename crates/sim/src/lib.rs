//! Discrete-event simulation primitives for Pensieve's serving experiments.
//!
//! The serving engines in `pensieve-core` are *real* implementations of the
//! paper's scheduler and cache manager; only device speed is simulated.
//! This crate provides the device models they consume:
//!
//! * [`events::EventQueue`] — a deterministic time-ordered event queue.
//! * [`pcie::PcieLink`] — the GPU<->CPU host link, including the paper's
//!   measured full-duplex contention (§5) and the "prioritize retrieval
//!   over eviction" waiting mechanism.
//! * [`gpu::GpuTimer`] — batch execution timing from the roofline cost
//!   model, plus the §4.3.3 pipelined per-layer swap-in overlap.
//! * [`faults::FaultInjector`] — a seeded, deterministic fault source used
//!   to exercise recovery paths (PCIe failures/timeouts, CPU-tier chunk
//!   loss/corruption, allocation faults, worker stalls and crashes), plus
//!   [`faults::FaultSchedule`] — seeded, time-triggered cluster faults
//!   (replica crashes, link partitions) for chaos harnesses.
//! * [`node_link::NodeLink`] — the inter-node fabric over which a cluster
//!   router streams KV chunks during conversation migration and
//!   replication, with seeded per-chunk loss feeding the
//!   recompute-fallback path and optional seeded partition windows.
//! * [`storage::StorageDevice`] — deep-storage tiers (simulated NVMe SSD
//!   and cold NFS/object store) below the CPU cache, with per-direction
//!   FIFO busy horizons and seeded cold-read stall/failure faults.

pub mod events;
pub mod faults;
pub mod gpu;
pub mod node_link;
pub mod pcie;
pub mod storage;

pub use events::{EventQueue, ScheduleError};
pub use faults::{
    ClusterFaultKind, FaultConfig, FaultCounters, FaultInjector, FaultKind, FaultSchedule,
    ScheduledFault,
};
pub use gpu::GpuTimer;
pub use node_link::{ChunkLost, NodeLink, NodeLinkSpec, PartitionSpec};
pub use pcie::{Direction, DuplexMode, PcieLink, TransferError};
pub use storage::{StorageDevice, StorageDeviceSpec, StorageReadError};
