//! Discrete-event simulation primitives for Pensieve's serving experiments.
//!
//! The serving engines in `pensieve-core` are *real* implementations of the
//! paper's scheduler and cache manager; only device speed is simulated.
//! This crate provides the three device models they consume:
//!
//! * [`events::EventQueue`] — a deterministic time-ordered event queue.
//! * [`pcie::PcieLink`] — the GPU<->CPU host link, including the paper's
//!   measured full-duplex contention (§5) and the "prioritize retrieval
//!   over eviction" waiting mechanism.
//! * [`gpu::GpuTimer`] — batch execution timing from the roofline cost
//!   model, plus the §4.3.3 pipelined per-layer swap-in overlap.

pub mod events;
pub mod gpu;
pub mod pcie;

pub use events::EventQueue;
pub use gpu::GpuTimer;
pub use pcie::{Direction, DuplexMode, PcieLink};
