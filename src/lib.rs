//! Pensieve: stateful LLM serving with a two-tier KV cache.
//!
//! This facade crate re-exports the workspace's public surface so that
//! downstream users can depend on a single crate. See the individual
//! crates for details:
//!
//! * [`model`] — architecture configs, hardware specs, the roofline cost
//!   model, and offline cost profiling.
//! * [`kernels`] — the paged KV pool and the multi-token paged attention
//!   kernel family (plus a tiny functional transformer).
//! * [`kvcache`] — the two-tier GPU/CPU cache manager and eviction
//!   policies.
//! * [`sim`] — discrete-event device models (PCIe link, GPU timing).
//! * [`obs`] — structured trace events, the metrics registry, and the
//!   JSONL / Chrome-trace / Prometheus exporters.
//! * [`core`] — the serving engines: Pensieve and the paper's baselines.
//! * [`cluster`] — multi-replica serving: placement policies,
//!   session-affinity routing, and KV migration between replicas.
//! * [`workload`] — multi-turn conversation workloads and the closed-loop
//!   driver.
//!
//! # Examples
//!
//! ```
//! use pensieve::core::{EngineConfig, Request, RequestId, SimServingEngine};
//! use pensieve::kvcache::SessionId;
//! use pensieve::model::{HardwareSpec, ModelConfig, SimTime};
//!
//! let mut engine = SimServingEngine::builder(
//!     EngineConfig::pensieve(),
//!     ModelConfig::opt_13b(),
//!     HardwareSpec::azure_nc_a100(1),
//! )
//! .build();
//! engine.submit(
//!     Request::builder()
//!         .id(RequestId(0))
//!         .session(SessionId(1))
//!         .arrival(SimTime::ZERO)
//!         .prompt_tokens(64)
//!         .output_tokens(32)
//!         .build()
//!         .expect("request is well-formed"),
//! );
//! engine.run_until_idle();
//! assert_eq!(engine.drain_responses().len(), 1);
//! ```

pub use pensieve_cluster as cluster;
pub use pensieve_core as core;
pub use pensieve_kernels as kernels;
pub use pensieve_kvcache as kvcache;
pub use pensieve_model as model;
pub use pensieve_obs as obs;
pub use pensieve_sim as sim;
pub use pensieve_workload as workload;
