//! Offline drop-in replacement for the subset of `serde_json` used by this
//! workspace: [`from_str`], [`to_string`], [`to_string_pretty`], and the
//! [`Value`] tree (re-exported from the `serde` shim).
//!
//! Numbers are stored as `f64`, so integers are exact up to 2^53 — far
//! beyond any token count or counter in this repository. Object keys are
//! kept sorted (like the real crate's default `BTreeMap` backend), so
//! output is deterministic.

use std::fmt;

pub use serde::{Map, Value};

/// Error from parsing or value conversion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Parses JSON text into any [`serde::Deserialize`] type.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(T::from_value(&value)?)
}

/// Serializes a value as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's value model; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d);
            })
        }
        Value::Object(map) => write_seq(
            out,
            map.iter(),
            indent,
            depth,
            ('{', '}'),
            |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<&str>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let len = items.len();
    for (i, item) in items.enumerate() {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        write_item(out, item, depth + 1);
        if i + 1 < len {
            out.push(',');
        }
    }
    if len > 0 {
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..depth {
                out.push_str(pad);
            }
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no NaN/inf; the real crate rejects them at the
        // Serializer layer. Emit null like `JSON.stringify` does.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 2f64.powi(53) {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode escape"))?,
                            );
                            continue; // parse_hex4 already advanced past the digits.
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so the
                    // bytes are valid UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unexpected end"))?;
                    if (c as u32) < 0x20 {
                        return Err(self.err("unescaped control character"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let text = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let code = u32::from_str_radix(text, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v: Value = from_str(r#"{"a": [1, 2.5, "x", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 5);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-300.0));
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\ttab \"quoted\" back\\slash \u{1F600} é";
        let json = to_string(&original.to_string()).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn unicode_escape_with_surrogate_pair() {
        let v: String = from_str(r#""é 😀""#).unwrap();
        assert_eq!(v, "é \u{1F600}");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(from_str::<Value>("not json").is_err());
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<Value>("[1] trailing").is_err());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
    }

    #[test]
    fn pretty_output_shape() {
        let v: Value = from_str(r#"{"b": [1, 2], "a": 3}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        // Keys sorted, two-space indent.
        assert_eq!(pretty, "{\n  \"a\": 3,\n  \"b\": [\n    1,\n    2\n  ]\n}");
        // Compact and pretty parse back to the same value.
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }
}
