//! Offline drop-in replacement for the subset of `serde` used by this
//! workspace.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors a simplified serialization framework under the same
//! item paths the real crate exposes. Instead of serde's
//! visitor/`Serializer` architecture, values pass through an in-memory
//! JSON-like [`Value`] tree:
//!
//! * [`Serialize`] converts a value *to* a [`Value`];
//! * [`Deserialize`] reconstructs a value *from* a [`Value`];
//! * the `#[derive(Serialize, Deserialize)]` macros (re-exported from the
//!   companion `serde_derive` shim) generate those impls for structs with
//!   named fields, single-field tuple structs, and unit-variant enums —
//!   the only shapes this repository uses.
//!
//! The `serde_json` shim handles text parsing/printing on top of the same
//! [`Value`] type.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Key-ordered JSON object representation.
pub type Map = BTreeMap<String, Value>;

/// An in-memory JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers up to 2^53 are exact).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with sorted keys.
    Object(Map),
}

impl Value {
    /// Returns the elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string contents if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the numeric value if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the numeric value as `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Returns the boolean if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the key-value map if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field lookup by key; `None` for non-objects or missing keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }
}

/// Error produced when a [`Value`] does not match the requested shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion of a value into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self` as a [`Value`].
    fn to_value(&self) -> Value;
}

/// Reconstruction of a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes an instance from `v`.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when `v` has the wrong shape.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool()
            .ok_or_else(|| DeError::custom("expected a boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected a string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError::custom("expected a number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_f64()
                    .ok_or_else(|| DeError::custom("expected a number"))?;
                if n.fract() != 0.0 {
                    return Err(DeError::custom("expected an integer"));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(DeError::custom("integer out of range"));
                }
                Ok(n as $t)
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected an array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(usize::from_value(&42usize.to_value()), Ok(42));
        assert_eq!(f64::from_value(&1.5f64.to_value()), Ok(1.5));
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()),
            Ok("hi".to_string())
        );
        assert_eq!(
            Vec::<u64>::from_value(&vec![1u64, 2, 3].to_value()),
            Ok(vec![1, 2, 3])
        );
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(usize::from_value(&Value::String("x".into())).is_err());
        assert!(usize::from_value(&Value::Number(1.5)).is_err());
        assert!(u8::from_value(&Value::Number(300.0)).is_err());
        assert!(Vec::<u64>::from_value(&Value::Number(1.0)).is_err());
    }

    #[test]
    fn value_accessors() {
        let mut m = Map::new();
        m.insert("k".into(), Value::Number(3.0));
        let obj = Value::Object(m);
        assert_eq!(obj.get("k").and_then(Value::as_u64), Some(3));
        assert_eq!(obj.get("missing"), None);
        assert_eq!(Value::Null.get("k"), None);
        assert_eq!(Value::Number(2.5).as_u64(), None);
    }
}
