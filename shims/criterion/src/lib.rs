//! Offline drop-in replacement for the subset of the `criterion` API used
//! by this workspace's benchmarks.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors a minimal timing harness under the same item paths:
//! [`Criterion`], [`BenchmarkId`], benchmark groups, and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Each benchmark is
//! warmed up briefly, then timed for `sample_size` samples; the median
//! per-iteration time is printed. No statistical analysis, plots, or
//! baselines — enough to compare kernels by eye and to keep
//! `cargo bench` / `clippy --all-targets` working offline.

use std::fmt::Display;
use std::time::Instant;

/// Identifier for a parameterized benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    #[must_use]
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median nanoseconds per iteration, recorded by the `iter` calls.
    median_ns: f64,
}

impl Bencher {
    /// Times `routine`, recording the median over the configured samples.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        // Warm up and pick an iteration count targeting ~1 ms per sample.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().as_nanos().max(1) as f64;
        let iters = ((1e6 / once).ceil() as usize).clamp(1, 1_000_000);
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            times.push(t.elapsed().as_nanos() as f64 / iters as f64);
        }
        times.sort_by(f64::total_cmp);
        self.median_ns = times[times.len() / 2];
    }

    /// Times `routine` over fresh inputs built by `setup` (setup time is
    /// excluded from the measurement).
    pub fn iter_with_setup<S, R>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> R,
    ) {
        let mut times: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            times.push(t.elapsed().as_nanos() as f64);
        }
        times.sort_by(f64::total_cmp);
        self.median_ns = times[times.len() / 2];
    }
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        median_ns: f64::NAN,
    };
    f(&mut b);
    let ns = b.median_ns;
    let pretty = if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    };
    println!("{label:<50} median {pretty}");
}

/// Top-level benchmark harness.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark in the group with an explicit input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.full);
        run_one(&label, self.criterion.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finishes the group (no-op in the shim; mirrors the real API).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions and its configuration.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>());
        });
        g.finish();
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = quick
    }

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn iter_with_setup_times_routine_only() {
        let mut b = Bencher {
            samples: 3,
            median_ns: f64::NAN,
        };
        b.iter_with_setup(|| vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert!(b.median_ns.is_finite());
    }
}
