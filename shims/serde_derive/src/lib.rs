//! Offline shim for serde's `#[derive(Serialize, Deserialize)]` macros.
//!
//! Generates impls of the *shim* `serde::Serialize` / `serde::Deserialize`
//! traits (a simplified `Value`-tree model, not the real serde visitor
//! API). The input grammar is parsed by hand — the build environment has
//! no registry access, so `syn`/`quote` are unavailable — and covers
//! exactly the shapes this workspace derives on:
//!
//! * structs with named fields,
//! * tuple structs with a single field (newtypes),
//! * enums whose variants are all unit variants.
//!
//! Of serde's field/variant attributes, exactly one is supported:
//! `#[serde(default)]` on a named-struct field, which makes a missing
//! key deserialize via [`Default`] instead of erroring (used for
//! forward-compatible spec fields). Any other `#[serde(...)]` content
//! produces a compile error, as does any other shape.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One named field of a derived struct.
struct Field {
    /// Field identifier.
    name: String,
    /// `#[serde(default)]`: tolerate a missing key on deserialize.
    default: bool,
}

/// Parsed shape of a derive input item.
enum Item {
    /// `struct S { a: T, b: U }` — fields in declaration order.
    NamedStruct { name: String, fields: Vec<Field> },
    /// `struct S(T);`
    Newtype { name: String },
    /// `enum E { A, B }` — variant names in declaration order.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives the shim `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, true)
}

/// Derives the shim `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, false)
}

fn expand(input: TokenStream, serialize: bool) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => {
            return format!("compile_error!({msg:?});")
                .parse()
                .expect("valid compile_error tokens")
        }
    };
    let code = match (&item, serialize) {
        (Item::NamedStruct { name, fields }, true) => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    let f = &f.name;
                    format!(
                        "m.insert({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 let mut m = ::serde::Map::new();\n\
                 {inserts}\
                 ::serde::Value::Object(m)\n\
                 }}\n}}\n"
            )
        }
        (Item::NamedStruct { name, fields }, false) => {
            let reads: String = fields
                .iter()
                .map(|f| {
                    let (f, default) = (&f.name, f.default);
                    if default {
                        format!(
                            "{f}: match obj.get({f:?}) {{\n\
                             ::std::option::Option::Some(v) => ::serde::Deserialize::from_value(v)?,\n\
                             ::std::option::Option::None => ::std::default::Default::default(),\n\
                             }},\n"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(obj.get({f:?}).ok_or_else(|| \
                             ::serde::DeError::custom(concat!(\"missing field `\", {f:?}, \"` in \", {name:?})))?)?,\n"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 let obj = v.as_object().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected an object for \", {name:?})))?;\n\
                 ::std::result::Result::Ok({name} {{\n{reads}}})\n\
                 }}\n}}\n"
            )
        }
        (Item::Newtype { name }, true) => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ ::serde::Serialize::to_value(&self.0) }}\n\
             }}\n"
        ),
        (Item::Newtype { name }, false) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))\n\
             }}\n}}\n"
        ),
        (Item::UnitEnum { name, variants }, true) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},\n"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::String(match self {{\n{arms}}}.to_string())\n\
                 }}\n}}\n"
            )
        }
        (Item::UnitEnum { name, variants }, false) => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 match v.as_str().ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"expected a string for \", {name:?})))? {{\n\
                 {arms}\
                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant `{{other}}`\"))),\n\
                 }}\n}}\n}}\n"
            )
        }
    };
    code.parse().expect("derive output parses as Rust")
}

/// Parses the derive input into one of the supported [`Item`] shapes.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and the
    // visibility qualifier.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".to_string()),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected a type name".to_string()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err("serde shim derive does not support generic types".to_string());
    }

    match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream())?,
            })
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            let fields = count_tuple_fields(g.stream());
            if fields == 1 {
                Ok(Item::Newtype { name })
            } else {
                Err(format!(
                    "serde shim derive supports only single-field tuple structs, `{name}` has {fields}"
                ))
            }
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Ok(Item::UnitEnum {
                name,
                variants: parse_unit_variants(g.stream())?,
            })
        }
        _ => Err(format!("unsupported shape for `{name}`")),
    }
}

/// True when the attribute body (the tokens inside `#[...]`) is exactly
/// the supported `serde(default)`; `Err` for any other `serde(...)`.
fn parse_serde_attr(group: &proc_macro::Group) -> Result<bool, String> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return Ok(false), // not a serde attribute (doc, lint, ...)
    }
    if let Some(TokenTree::Group(args)) = tokens.get(1) {
        let body = args.stream().to_string();
        if body.trim() == "default" {
            return Ok(true);
        }
        return Err(format!(
            "serde shim derive supports only #[serde(default)], found #[serde({})]",
            body.trim()
        ));
    }
    Err("malformed #[serde(...)] attribute".to_string())
}

/// Extracts fields (name + `#[serde(default)]` flag) from the body of a
/// braced struct.
fn parse_named_fields(body: TokenStream) -> Result<Vec<Field>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Consume field attributes (recording `#[serde(default)]`) and
        // visibility.
        let mut default = false;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        default |= parse_serde_attr(g)?;
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a field name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            _ => return Err(format!("expected `:` after field `{name}`")),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    Ok(fields)
}

/// Counts top-level fields of a tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut commas = 0;
    let mut trailing_comma = false;
    for t in &tokens {
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    commas + usize::from(!trailing_comma)
}

/// Extracts variant names from an enum body, rejecting non-unit variants.
fn parse_unit_variants(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2; // attribute
        }
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected a variant name, found `{other}`")),
        };
        i += 1;
        match tokens.get(i) {
            None => {
                variants.push(name);
                break;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
                variants.push(name);
            }
            Some(_) => {
                return Err(format!(
                    "serde shim derive supports only unit enum variants; `{name}` has data"
                ))
            }
        }
    }
    Ok(variants)
}
