//! Offline drop-in replacement for the subset of the `rand` crate API used
//! by this workspace.
//!
//! The build environment has no access to a crates.io registry, so the
//! workspace vendors a tiny deterministic PRNG under the same paths the
//! real crate exposes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and [`Rng::random`] / [`Rng::random_range`]. The generator is a
//! SplitMix64 core — statistically solid for simulation workloads, fully
//! reproducible per seed, and intentionally *not* cryptographic.
//!
//! The numeric streams differ from the real `rand` crate; everything in
//! this repository that consumes randomness asserts statistical or
//! determinism properties rather than exact sequences, so the swap is
//! transparent.

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling helpers, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples a value from the type's standard distribution
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the
    /// full domain; `bool`: fair coin).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable from their standard distribution.
pub trait StandardSample: Sized {
    /// Draws one standard-distribution sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

/// Types samplable uniformly from a half-open range.
pub trait UniformSample: Sized {
    /// Draws one sample uniform over `range`.
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<Self>) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(range.start < range.end, "empty range");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

impl UniformSample for f32 {
    fn sample_range<R: RngCore>(rng: &mut R, range: Range<f32>) -> f32 {
        assert!(range.start < range.end, "empty range");
        let u = f32::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

/// Unbiased-enough integer range sampling via a 128-bit widening multiply
/// (Lemire's method without the rejection step; bias is < 2^-64 per draw).
macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<f64> = (0..32).map(|_| a.random::<f64>()).collect();
        let ys: Vec<f64> = (0..32).map(|_| b.random::<f64>()).collect();
        let zs: Vec<f64> = (0..32).map(|_| c.random::<f64>()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.random_range(3usize..17);
            assert!((3..17).contains(&i));
            let s = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }
}
