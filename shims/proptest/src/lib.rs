//! Offline drop-in replacement for the subset of the `proptest` API used
//! by this workspace.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors a small property-testing harness under the same item
//! paths: the [`proptest!`] macro, [`ProptestConfig`], the
//! [`Strategy`] trait with range/tuple/[`collection::vec`]/
//! [`sample::select`] strategies, and the [`prop_assert!`] /
//! [`prop_assert_eq!`] assertion macros.
//!
//! Differences from the real crate, acceptable for this repository's
//! usage: no shrinking (failing cases are reported with their generated
//! inputs but not minimized), and case generation is seeded
//! deterministically from the test's name, so failures always reproduce.

use std::ops::Range;

/// Number of cases each property runs by default (the real crate uses
/// 256; the shim uses a smaller default to keep `cargo test` fast, and
/// every property block in this repository sets its count explicitly).
pub const DEFAULT_CASES: u32 = 64;

/// Per-property-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: DEFAULT_CASES,
        }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG whose stream is a pure function of `name` — each
    /// property explores its own sequence, stable across runs.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Strategies that choose among explicit values.
pub mod sample {
    use super::{Strategy, TestRng};

    /// Uniform choice from a fixed list (see [`select`]).
    #[derive(Debug, Clone)]
    pub struct Select<T> {
        items: Vec<T>,
    }

    /// A strategy sampling uniformly from `items`.
    ///
    /// # Panics
    ///
    /// Panics when sampling if `items` is empty.
    #[must_use]
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over an empty list");
            let idx = ((rng.next_u64() as u128 * self.items.len() as u128) >> 64) as usize;
            self.items[idx].clone()
        }
    }
}

/// Strategies producing collections.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing vectors (see [`vec`]).
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A strategy producing `Vec`s whose length is uniform in `size` and
    /// whose elements are drawn from `element`.
    #[must_use]
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over many sampled inputs.
///
/// An optional leading `#![proptest_config(expr)]` sets the case count
/// for every property in the block.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); ) => {};
    (@impl ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for _case in 0..config.cases {
                $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                $body
            }
        }
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_in_bounds() {
        let mut rng = crate::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let x = crate::Strategy::sample(&(3usize..10), &mut rng);
            assert!((3..10).contains(&x));
            let (a, b) = crate::Strategy::sample(&(0u8..5, 1u64..4), &mut rng);
            assert!(a < 5 && (1..4).contains(&b));
            let v = crate::Strategy::sample(&prop::collection::vec(0u32..7, 2..6), &mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 7));
            let s = crate::Strategy::sample(&prop::sample::select(vec![2usize, 4, 8]), &mut rng);
            assert!([2, 4, 8].contains(&s));
        }
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let mut c = crate::TestRng::from_name("y");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..8).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires arguments, strategies, and assertions together.
        #[test]
        fn macro_generates_runnable_properties(
            a in 1usize..100,
            b in 0u64..10,
            v in prop::collection::vec(0u8..3, 1..5),
        ) {
            prop_assert!((1..100).contains(&a));
            prop_assert_eq!(b < 10, true, "b = {}", b);
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
