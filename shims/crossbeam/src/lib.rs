//! Offline drop-in replacement for the subset of `crossbeam` used by this
//! workspace: a persistent worker pool for data-parallel kernels and
//! multi-producer multi-consumer unbounded channels with disconnect
//! detection.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors an equivalent built on [`std::sync::Mutex`] +
//! [`std::sync::Condvar`]. Semantics match `crossbeam-channel` where this
//! repository relies on them:
//!
//! * [`channel::Sender::send`] fails with [`channel::SendError`] once every
//!   receiver is gone.
//! * [`channel::Receiver::recv`] blocks until a message arrives and fails
//!   with [`channel::RecvError`] once every sender is gone **and** the
//!   queue is drained — the disconnect signal the engine uses to detect
//!   dead tensor-parallel workers.

pub mod model;

/// A **persistent** worker pool for data-parallel kernels.
///
/// Earlier revisions spawned and joined OS threads on every
/// [`pool::map_partitions`] call (`std::thread::scope` fork/join), which
/// cost hundreds of microseconds per kernel invocation and erased the
/// parallel path's gains — generation batches actually ran *slower* with
/// more threads. A [`pool::Pool`] instead owns long-lived workers that
/// park on a condvar between batches; dispatching a batch is one mutex
/// push plus a wakeup, so the per-call overhead is a few microseconds and
/// amortizes across every scheduler iteration of a serving run.
///
/// Determinism contract (unchanged from the scoped pool): partition
/// indices are assigned in fixed contiguous ranges, every partition is
/// computed independently, and the caller receives results in index order
/// regardless of thread interleaving. Callers that combine partition
/// outputs must do so sequentially in that order (see `pensieve-kernels`),
/// which keeps multi-threaded results bit-identical to the
/// single-threaded path.
///
/// Soundness: batch closures borrow the caller's stack (weights, KV
/// pools, query matrices). The pool erases those lifetimes behind raw
/// pointers to hand work to its `'static` workers, which is sound because
/// the dispatching call **always blocks until every partition of its
/// batch has completed** — including when a partition panics (the payload
/// is captured, the latch still counts down, and the panic resumes on the
/// caller after the barrier). No borrow outlives the call.
pub mod pool {
    use std::any::Any;
    use std::collections::{BTreeMap, VecDeque};
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
    use std::thread::JoinHandle;
    use std::time::{Duration, Instant};

    /// A lifetime-erased unit of work: one partition of one batch.
    type Job = Box<dyn FnOnce() + Send>;

    /// Locks a mutex, riding through poisoning: pool state stays
    /// consistent under panicking jobs because jobs run inside
    /// `catch_unwind`, so a poisoned lock only means a *caller* panicked
    /// between operations and the protected data was not mid-mutation.
    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    struct Queue {
        jobs: VecDeque<Job>,
        shutdown: bool,
    }

    /// State shared between the pool handle(s) and the workers.
    struct Shared {
        queue: Mutex<Queue>,
        ready: Condvar,
        /// Partition tasks executed over the pool's lifetime (inline
        /// serial runs count as one task).
        tasks_total: AtomicU64,
        /// Cumulative nanoseconds workers spent executing jobs (excludes
        /// the caller's own inline partition and queue-draining help).
        busy_ns: AtomicU64,
        /// Per batch, the *sum* of partition durations: what the batch
        /// would have cost on one thread.
        modeled_serial_ns: AtomicU64,
        /// Per batch, the *max* of partition durations: the critical
        /// path a machine with >= `threads` cores would observe. The
        /// ratio serial/critical is the modeled speedup, meaningful even
        /// on boxes with fewer cores than partitions (where wall-clock
        /// cannot show scaling because partitions time-share one core).
        modeled_critical_ns: AtomicU64,
    }

    /// Counters sampled by observability ([`Pool::stats`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct PoolStats {
        /// Partition width of the pool (1 = serial).
        pub threads: usize,
        /// Partition tasks executed over the pool's lifetime.
        pub tasks_total: u64,
        /// Jobs currently queued and not yet picked up.
        pub queue_depth: usize,
        /// Cumulative time parked workers spent executing jobs.
        pub busy: Duration,
        /// Summed per-partition durations across every batch: the
        /// modeled one-thread cost of all dispatched work.
        pub modeled_serial: Duration,
        /// Summed per-batch critical paths (max partition duration):
        /// the modeled elapsed cost with one core per partition.
        /// `modeled_serial / modeled_critical` is the modeled speedup.
        pub modeled_critical: Duration,
    }

    /// Completion latch for one batch: counts outstanding enqueued
    /// partitions and stashes the first panic payload.
    struct Batch {
        remaining: Mutex<usize>,
        done: Condvar,
        panic: Mutex<Option<Box<dyn Any + Send>>>,
        /// Wall-clock duration of each partition, for the modeled
        /// serial/critical-path accounting.
        durs: Mutex<Vec<Duration>>,
    }

    impl Batch {
        fn complete(&self, payload: Option<Box<dyn Any + Send>>) {
            if let Some(p) = payload {
                let mut slot = lock(&self.panic);
                slot.get_or_insert(p);
            }
            let mut rem = lock(&self.remaining);
            *rem -= 1;
            if *rem == 0 {
                drop(rem);
                self.done.notify_all();
            }
        }
    }

    struct Inner {
        shared: Arc<Shared>,
        threads: usize,
        workers: Vec<JoinHandle<()>>,
    }

    impl Drop for Inner {
        fn drop(&mut self) {
            {
                let mut q = lock(&self.shared.queue);
                q.shutdown = true;
            }
            self.shared.ready.notify_all();
            for h in self.workers.drain(..) {
                // A worker that panicked outside a job cannot exist (jobs
                // run under catch_unwind); a join error is ignored rather
                // than double-panicking in drop.
                let _ = h.join();
            }
        }
    }

    /// A cheaply cloneable handle to a set of persistent parked workers.
    /// All clones share the workers; the workers shut down and join when
    /// the last handle drops.
    #[derive(Clone)]
    pub struct Pool {
        inner: Arc<Inner>,
    }

    // A panicking partition leaves the pool fully consistent: jobs run
    // under `catch_unwind`, the latch still counts down, and the payload
    // is re-raised on the dispatching caller — so observing the pool
    // after a caught panic is safe.
    impl std::panic::UnwindSafe for Pool {}
    impl std::panic::RefUnwindSafe for Pool {}

    impl std::fmt::Debug for Pool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("Pool")
                .field("threads", &self.inner.threads)
                .finish()
        }
    }

    impl Default for Pool {
        fn default() -> Self {
            Pool::serial()
        }
    }

    /// Trampoline that recovers the concrete partition closure from its
    /// erased pointer. Monomorphized per closure type so the erased
    /// pointer is a thin `*const ()`.
    ///
    /// # Safety
    ///
    /// `data` must point to a live `F` for the duration of the call; the
    /// dispatching batch guarantees this by blocking until every
    /// partition completes.
    unsafe fn call_task<F: Fn(usize) + Sync>(data: *const (), t: usize) {
        // SAFETY: see function contract — `data` was created from a live
        // `&F` by `run_batch`, which outlives this call.
        let f = unsafe { &*data.cast::<F>() };
        f(t);
    }

    /// A raw pointer blessed to cross threads. Every use site bounds the
    /// pointee's lifetime by a batch barrier and writes only disjoint
    /// ranges, so the usual `Send`/`Sync` auto-trait caution does not
    /// apply.
    #[derive(Clone, Copy)]
    struct SendPtr<T: ?Sized>(*const T);

    impl<T: ?Sized> SendPtr<T> {
        /// Accessor (rather than field access) so closures capture the
        /// whole `Send + Sync` wrapper under RFC 2229 disjoint capture,
        /// not the bare raw-pointer field.
        fn get(&self) -> *const T {
            self.0
        }
    }

    // SAFETY: `SendPtr` is only constructed in `run_batch` from borrows
    // that remain live (and unmutated, for shared data) until the batch
    // barrier; partition tasks touch disjoint data.
    unsafe impl<T: ?Sized> Send for SendPtr<T> {}
    // SAFETY: as above — shared access is read-only, mutable access is
    // range-disjoint per partition.
    unsafe impl<T: ?Sized> Sync for SendPtr<T> {}

    impl Pool {
        /// Creates a pool that partitions work `threads` ways: the caller
        /// participates as one worker, so `threads - 1` OS threads are
        /// spawned and parked. `threads <= 1` spawns nothing and runs
        /// everything inline.
        #[must_use]
        pub fn new(threads: usize) -> Self {
            let threads = threads.max(1);
            let shared = Arc::new(Shared {
                queue: Mutex::new(Queue {
                    jobs: VecDeque::new(),
                    shutdown: false,
                }),
                ready: Condvar::new(),
                tasks_total: AtomicU64::new(0),
                busy_ns: AtomicU64::new(0),
                modeled_serial_ns: AtomicU64::new(0),
                modeled_critical_ns: AtomicU64::new(0),
            });
            let workers = (1..threads)
                .map(|i| {
                    let shared = Arc::clone(&shared);
                    std::thread::Builder::new()
                        .name(format!("pensieve-pool-{i}"))
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn pool worker")
                })
                .collect();
            Pool {
                inner: Arc::new(Inner {
                    shared,
                    threads,
                    workers,
                }),
            }
        }

        /// The inline pool: partition width 1, no workers, zero dispatch
        /// cost. The default for engines until a wider pool is installed.
        #[must_use]
        pub fn serial() -> Self {
            Pool::new(1)
        }

        /// A process-wide shared pool of the given width, created on
        /// first use and kept alive for the process lifetime. This backs
        /// the thread-count-based compatibility entry points
        /// ([`map_partitions`]) so legacy `threads: usize` call sites get
        /// persistent workers without plumbing a handle.
        #[must_use]
        pub fn global(threads: usize) -> Pool {
            static POOLS: OnceLock<Mutex<BTreeMap<usize, Pool>>> = OnceLock::new();
            let pools = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
            lock(pools)
                .entry(threads.max(1))
                .or_insert_with(|| Pool::new(threads))
                .clone()
        }

        /// Partition width (1 = serial).
        #[must_use]
        pub fn threads(&self) -> usize {
            self.inner.threads
        }

        /// Counter snapshot for observability.
        #[must_use]
        pub fn stats(&self) -> PoolStats {
            PoolStats {
                threads: self.inner.threads,
                tasks_total: self.inner.shared.tasks_total.load(Ordering::Relaxed),
                queue_depth: lock(&self.inner.shared.queue).jobs.len(),
                busy: Duration::from_nanos(self.inner.shared.busy_ns.load(Ordering::Relaxed)),
                modeled_serial: Duration::from_nanos(
                    self.inner.shared.modeled_serial_ns.load(Ordering::Relaxed),
                ),
                modeled_critical: Duration::from_nanos(
                    self.inner
                        .shared
                        .modeled_critical_ns
                        .load(Ordering::Relaxed),
                ),
            }
        }

        /// Maps `f` over indices `0..n`, split into at most
        /// [`Pool::threads`] contiguous partitions, and returns the
        /// outputs in index order. With a serial pool (or `n <= 1`) the
        /// map runs inline — same results, no dispatch cost.
        ///
        /// # Panics
        ///
        /// Propagates a panic from any partition (after every partition
        /// of the batch has finished, so no borrow escapes).
        pub fn map_partitions<T, F>(&self, n: usize, f: F) -> Vec<T>
        where
            T: Send,
            F: Fn(usize) -> T + Sync,
        {
            let parts = self.inner.threads.min(n);
            if parts <= 1 {
                if n == 0 {
                    return Vec::new();
                }
                let t0 = Instant::now();
                let out: Vec<T> = (0..n).map(f).collect();
                self.record_inline(t0.elapsed());
                return out;
            }
            let per = n.div_ceil(parts);
            let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
            let optr = SendPtr(out.as_mut_ptr().cast_const());
            let f = &f;
            let task = move |t: usize| {
                let lo = t * per;
                let hi = n.min(lo + per);
                for i in lo..hi {
                    let v = f(i);
                    // SAFETY: partitions cover disjoint index ranges of a
                    // buffer that outlives the batch barrier; overwriting
                    // the pre-initialized `None` drops nothing.
                    unsafe {
                        optr.get().cast_mut().add(i).write(Some(v));
                    }
                }
            };
            self.run_batch(parts, &task);
            out.into_iter()
                .map(|v| v.expect("every partition filled"))
                .collect()
        }

        /// Runs `f(i, &mut items[i])` for every item, split into at most
        /// [`Pool::threads`] contiguous partitions, and returns each
        /// partition's wall-clock duration (empty partitions report
        /// zero). The durations let callers compute a critical-path
        /// (modeled) speedup — `sum(durations) / max(durations)` — that
        /// is meaningful even on machines with fewer cores than
        /// partitions.
        ///
        /// Items are disjoint, so this is deterministic for any `f` whose
        /// effect on item `i` depends only on item `i`.
        ///
        /// # Panics
        ///
        /// Propagates a panic from any partition (after the batch
        /// barrier).
        pub fn for_each_mut<T, F>(&self, items: &mut [T], f: F) -> Vec<Duration>
        where
            T: Send,
            F: Fn(usize, &mut T) + Sync,
        {
            let n = items.len();
            let parts = self.inner.threads.min(n).max(1);
            let mut durs = vec![Duration::ZERO; parts];
            if parts <= 1 {
                let t0 = Instant::now();
                for (i, item) in items.iter_mut().enumerate() {
                    f(i, item);
                }
                if n > 0 {
                    let took = t0.elapsed();
                    if let Some(slot) = durs.first_mut() {
                        *slot = took;
                    }
                    self.record_inline(took);
                }
                return durs;
            }
            let per = n.div_ceil(parts);
            let base = SendPtr(items.as_mut_ptr().cast_const());
            let dptr = SendPtr(durs.as_mut_ptr().cast_const());
            let f = &f;
            let task = move |t: usize| {
                let lo = t * per;
                let hi = n.min(lo + per);
                let t0 = Instant::now();
                for i in lo..hi {
                    // SAFETY: partitions cover disjoint index ranges of a
                    // slice that outlives the batch barrier.
                    let item = unsafe { &mut *base.get().cast_mut().add(i) };
                    f(i, item);
                }
                // SAFETY: slot `t` is written only by partition `t`.
                unsafe {
                    dptr.get().cast_mut().add(t).write(t0.elapsed());
                }
            };
            self.run_batch(parts, &task);
            durs
        }

        /// Accounts a one-partition inline run: one task, and a batch
        /// whose serial and critical-path costs coincide.
        fn record_inline(&self, elapsed: Duration) {
            let shared = &self.inner.shared;
            shared.tasks_total.fetch_add(1, Ordering::Relaxed);
            let ns = elapsed.as_nanos() as u64;
            shared.modeled_serial_ns.fetch_add(ns, Ordering::Relaxed);
            shared.modeled_critical_ns.fetch_add(ns, Ordering::Relaxed);
        }

        /// Dispatches one batch of `parts >= 2` partition tasks:
        /// partitions `1..parts` are enqueued for the workers, the caller
        /// runs partition 0 itself, then helps drain the queue, and
        /// finally blocks on the batch latch. Returns only once every
        /// partition has completed; a panic from any partition resumes on
        /// the caller *after* the barrier.
        fn run_batch<F: Fn(usize) + Sync>(&self, parts: usize, task: &F) {
            debug_assert!(parts >= 2);
            let shared = &self.inner.shared;
            let batch = Arc::new(Batch {
                remaining: Mutex::new(parts - 1),
                done: Condvar::new(),
                panic: Mutex::new(None),
                durs: Mutex::new(vec![Duration::ZERO; parts]),
            });
            let data = SendPtr(std::ptr::from_ref(task).cast::<()>());
            let call: unsafe fn(*const (), usize) = call_task::<F>;
            {
                let mut q = lock(&shared.queue);
                for t in 1..parts {
                    let b = Arc::clone(&batch);
                    q.jobs.push_back(Box::new(move || {
                        let t0 = Instant::now();
                        // SAFETY: `data` points at `task` on the
                        // dispatching frame, which blocks until this
                        // batch's latch reaches zero — the borrow is
                        // live for the whole call.
                        let r = catch_unwind(AssertUnwindSafe(|| unsafe { call(data.get(), t) }));
                        if let Some(slot) = lock(&b.durs).get_mut(t) {
                            *slot = t0.elapsed();
                        }
                        b.complete(r.err());
                    }));
                }
            }
            shared.ready.notify_all();
            shared
                .tasks_total
                .fetch_add(parts as u64, Ordering::Relaxed);
            // The caller is worker 0.
            let t0 = Instant::now();
            let mine = catch_unwind(AssertUnwindSafe(|| task(0)));
            if let Some(slot) = lock(&batch.durs).first_mut() {
                *slot = t0.elapsed();
            }
            // Help drain the queue instead of blocking: on machines with
            // fewer cores than partitions the caller does most of the
            // work itself, and nested dispatch from inside a worker can
            // never deadlock because the dispatcher executes its own
            // sub-batch when nobody else does.
            loop {
                let job = lock(&shared.queue).jobs.pop_front();
                let Some(job) = job else { break };
                job();
            }
            let mut rem = lock(&batch.remaining);
            while *rem > 0 {
                rem = batch
                    .done
                    .wait(rem)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            drop(rem);
            {
                let durs = lock(&batch.durs);
                let sum: Duration = durs.iter().sum();
                let max = durs.iter().copied().max().unwrap_or(Duration::ZERO);
                shared
                    .modeled_serial_ns
                    .fetch_add(sum.as_nanos() as u64, Ordering::Relaxed);
                shared
                    .modeled_critical_ns
                    .fetch_add(max.as_nanos() as u64, Ordering::Relaxed);
            }
            if let Some(payload) = lock(&batch.panic).take() {
                resume_unwind(payload);
            }
            if let Err(payload) = mine {
                resume_unwind(payload);
            }
        }
    }

    fn worker_loop(shared: &Shared) {
        loop {
            let job = {
                let mut q = lock(&shared.queue);
                loop {
                    if let Some(j) = q.jobs.pop_front() {
                        break j;
                    }
                    if q.shutdown {
                        return;
                    }
                    q = shared
                        .ready
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let t0 = Instant::now();
            job();
            shared
                .busy_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        }
    }

    /// Maps `f` over partitions `0..n`, using a process-wide persistent
    /// pool of width `threads` (see [`Pool::global`]), and returns the
    /// outputs in partition order. Compatibility entry point for call
    /// sites that carry a thread count instead of a [`Pool`] handle; the
    /// partitioning and merge-order contract is identical.
    ///
    /// With `threads <= 1` (or `n <= 1`) the map runs inline on the
    /// calling thread — same results, no dispatch cost.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any partition.
    pub fn map_partitions<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        Pool::global(threads).map_partitions(n, f)
    }
}

/// Unbounded MPMC channels with disconnect semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake every blocked receiver so it can observe disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no message is queued;
        /// [`TryRecvError::Disconnected`] if additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use super::pool::{map_partitions, Pool};

    #[test]
    fn pool_results_in_partition_order() {
        for threads in [1usize, 2, 3, 4, 9] {
            let got = map_partitions(threads, 7, |i| i * i);
            assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36], "threads={threads}");
        }
    }

    #[test]
    fn pool_handles_empty_and_singleton() {
        assert_eq!(map_partitions(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_partitions(4, 1, |i| i + 10), vec![10]);
        let p = Pool::new(4);
        assert_eq!(p.map_partitions(0, |i| i), Vec::<usize>::new());
        assert_eq!(p.map_partitions(1, |i| i + 10), vec![10]);
    }

    #[test]
    fn pool_shares_borrowed_data() {
        let data: Vec<u64> = (0..100).collect();
        let sums = map_partitions(3, 4, |p| data[p * 25..(p + 1) * 25].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), (0..100).sum());
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let r = std::panic::catch_unwind(|| {
            map_partitions(2, 4, |i| {
                assert!(i != 3, "boom");
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn persistent_pool_matches_inline_results() {
        let pool = Pool::new(4);
        for n in [0usize, 1, 2, 7, 64, 100] {
            let serial: Vec<usize> = (0..n).map(|i| i * 3 + 1).collect();
            assert_eq!(pool.map_partitions(n, |i| i * 3 + 1), serial, "n={n}");
        }
    }

    #[test]
    fn persistent_pool_amortizes_across_batches() {
        let pool = Pool::new(3);
        let data: Vec<u64> = (0..999).collect();
        for _ in 0..50 {
            let sums = pool.map_partitions(9, |p| data[p * 111..(p + 1) * 111].iter().sum::<u64>());
            assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
        }
        assert!(pool.stats().tasks_total >= 150, "tasks were counted");
    }

    #[test]
    fn pool_drop_joins_workers_cleanly() {
        // `drop` blocks on every worker's JoinHandle, so this test hangs
        // (and the suite times out) if shutdown were broken.
        let pool = Pool::new(8);
        let _ = pool.map_partitions(32, |i| i);
        let clone = pool.clone();
        drop(pool);
        // Clones keep the workers alive.
        assert_eq!(clone.map_partitions(3, |i| i), vec![0, 1, 2]);
        drop(clone);
    }

    #[test]
    fn pool_panic_propagates_and_pool_survives() {
        let pool = Pool::new(4);
        let r = std::panic::catch_unwind(|| {
            pool.map_partitions(8, |i| {
                assert!(i != 6, "boom");
                i
            })
        });
        assert!(r.is_err(), "partition panic must propagate to the caller");
        // The workers stayed parked and healthy: the same pool still
        // computes correct batches afterwards.
        let got = pool.map_partitions(8, |i| i + 1);
        assert_eq!(got, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn pool_caller_partition_panic_propagates() {
        let pool = Pool::new(2);
        let r = std::panic::catch_unwind(|| {
            pool.map_partitions(4, |i| {
                assert!(i != 0, "boom on the caller's own partition");
                i
            })
        });
        assert!(r.is_err());
        assert_eq!(pool.map_partitions(2, |i| i), vec![0, 1]);
    }

    #[test]
    fn nested_dispatch_does_not_deadlock() {
        let pool = Pool::new(2);
        let inner = pool.clone();
        let got = pool.map_partitions(2, |i| inner.map_partitions(2, move |j| i * 10 + j));
        assert_eq!(got, vec![vec![0, 1], vec![10, 11]]);
    }

    #[test]
    fn for_each_mut_updates_disjoint_items_in_order() {
        let pool = Pool::new(4);
        let mut items: Vec<u64> = (0..10).collect();
        let durs = pool.for_each_mut(&mut items, |i, v| *v += i as u64);
        assert_eq!(items, (0..10).map(|i| 2 * i).collect::<Vec<_>>());
        assert_eq!(durs.len(), 4, "one duration per partition");
        // Serial pool: one partition, same results.
        let serial = Pool::serial();
        let mut again: Vec<u64> = (0..10).collect();
        let durs = serial.for_each_mut(&mut again, |i, v| *v += i as u64);
        assert_eq!(again, items);
        assert_eq!(durs.len(), 1);
    }

    #[test]
    fn stats_report_queue_and_busy() {
        let pool = Pool::new(2);
        let before = pool.stats();
        assert_eq!(before.threads, 2);
        let _ = pool.map_partitions(4, |i| i * i);
        let after = pool.stats();
        assert!(after.tasks_total > before.tasks_total);
        assert_eq!(after.queue_depth, 0, "queue drains at the batch barrier");
    }

    #[test]
    fn stats_model_serial_and_critical_path() {
        let pool = Pool::new(4);
        let _ = pool.map_partitions(8, |i| {
            std::thread::sleep(std::time::Duration::from_millis(2));
            i
        });
        let s = pool.stats();
        assert!(s.modeled_critical > std::time::Duration::ZERO);
        assert!(
            s.modeled_serial >= s.modeled_critical,
            "sum of partitions bounds the critical path from above"
        );
        // Four partitions sleeping ~2 ms each: the serial model must see
        // roughly the whole 8 ms even though this box may have one core.
        assert!(s.modeled_serial >= std::time::Duration::from_millis(6));
    }

    #[test]
    fn global_pools_are_shared_per_width() {
        let a = Pool::global(3);
        let b = Pool::global(3);
        let t0 = a.stats().tasks_total;
        let _ = b.map_partitions(6, |i| i);
        assert!(a.stats().tasks_total > t0, "handles share one pool");
    }

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_detects_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_recv_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
