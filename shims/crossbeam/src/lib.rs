//! Offline drop-in replacement for the subset of `crossbeam` used by this
//! workspace: multi-producer multi-consumer unbounded channels with
//! disconnect detection.
//!
//! The build environment cannot reach a crates.io registry, so the
//! workspace vendors an equivalent built on [`std::sync::Mutex`] +
//! [`std::sync::Condvar`]. Semantics match `crossbeam-channel` where this
//! repository relies on them:
//!
//! * [`channel::Sender::send`] fails with [`channel::SendError`] once every
//!   receiver is gone.
//! * [`channel::Receiver::recv`] blocks until a message arrives and fails
//!   with [`channel::RecvError`] once every sender is gone **and** the
//!   queue is drained — the disconnect signal the engine uses to detect
//!   dead tensor-parallel workers.

/// A scoped fork/join worker pool for data-parallel kernels.
///
/// Mirrors the shape of `crossbeam::thread::scope` fan-out but exposes the
/// one pattern this workspace needs: map a function over `n` disjoint
/// partitions on up to `threads` OS threads and return the results **in
/// partition order**. Built on [`std::thread::scope`], so borrowed data
/// (weights, KV pools, query matrices) can be shared without `Arc`.
///
/// Determinism contract: partition indices are assigned to threads in
/// fixed contiguous ranges, every partition is computed independently, and
/// the caller receives the results in index order regardless of thread
/// interleaving. Callers that combine partition outputs must do so
/// sequentially in that order (see `pensieve-kernels`), which keeps
/// multi-threaded results bit-identical to the single-threaded path.
pub mod pool {
    /// Maps `f` over partitions `0..n`, using up to `threads` worker
    /// threads, and returns the outputs in partition order.
    ///
    /// With `threads <= 1` (or `n <= 1`) the map runs inline on the
    /// calling thread — same results, no spawn cost. Partitions are split
    /// into `threads` contiguous index ranges, one spawned thread per
    /// non-empty range; each thread evaluates its range in ascending
    /// order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any worker thread.
    pub fn map_partitions<T, F>(threads: usize, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if threads <= 1 || n <= 1 {
            return (0..n).map(f).collect();
        }
        let per = n.div_ceil(threads);
        let f = &f;
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .filter_map(|t| {
                    let lo = t * per;
                    let hi = n.min(lo + per);
                    (lo < hi).then(|| s.spawn(move || (lo, (lo..hi).map(f).collect::<Vec<T>>())))
                })
                .collect();
            for h in handles {
                let (lo, vals) = match h.join() {
                    Ok(res) => res,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                for (i, v) in vals.into_iter().enumerate() {
                    out[lo + i] = Some(v);
                }
            }
        });
        out.into_iter()
            .map(|v| v.expect("every partition filled"))
            .collect()
    }
}

/// Unbounded MPMC channels with disconnect semantics.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half of an unbounded channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of an unbounded channel. Cloneable.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Error returned by [`Sender::send`] when every receiver has been
    /// dropped; carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender has been dropped.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Creates an unbounded channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                inner: Arc::clone(&inner),
            },
            Receiver { inner },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver.
        ///
        /// # Errors
        ///
        /// Returns the message if every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if st.receivers == 0 {
                return Err(SendError(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.inner.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders += 1;
            drop(st);
            Sender {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            let disconnected = st.senders == 0;
            drop(st);
            if disconnected {
                // Wake every blocked receiver so it can observe disconnect.
                self.inner.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] if the channel is empty and every sender
        /// has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.inner.ready.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Dequeues a message if one is immediately available.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] if no message is queued;
        /// [`TryRecvError::Disconnected`] if additionally every sender is
        /// gone.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(msg) = st.queue.pop_front() {
                return Ok(msg);
            }
            if st.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers += 1;
            drop(st);
            Receiver {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.inner.state.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvError, TryRecvError};
    use super::pool::map_partitions;

    #[test]
    fn pool_results_in_partition_order() {
        for threads in [1usize, 2, 3, 4, 9] {
            let got = map_partitions(threads, 7, |i| i * i);
            assert_eq!(got, vec![0, 1, 4, 9, 16, 25, 36], "threads={threads}");
        }
    }

    #[test]
    fn pool_handles_empty_and_singleton() {
        assert_eq!(map_partitions(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(map_partitions(4, 1, |i| i + 10), vec![10]);
    }

    #[test]
    fn pool_shares_borrowed_data() {
        let data: Vec<u64> = (0..100).collect();
        let sums = map_partitions(3, 4, |p| data[p * 25..(p + 1) * 25].iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), (0..100).sum());
    }

    #[test]
    fn pool_propagates_worker_panic() {
        let r = std::panic::catch_unwind(|| {
            map_partitions(2, 4, |i| {
                assert!(i != 3, "boom");
                i
            })
        });
        assert!(r.is_err());
    }

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_detects_disconnect_after_drain() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_without_receivers() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_recv_wakes_on_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let h = std::thread::spawn(move || rx.recv());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(tx);
        assert_eq!(h.join().unwrap(), Err(RecvError));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            for i in 0..100 {
                tx2.send(i).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..100 {
            got.push(rx.recv().unwrap());
        }
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
