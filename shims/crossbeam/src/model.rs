//! A loom-style exhaustive interleaving model of the pool's park/unpark
//! + queue-drain-helping protocol.
//!
//! [`super::pool::Pool`] rests on three load-bearing claims:
//!
//! 1. **No lost-wakeup deadlock.** Jobs are enqueued *before*
//!    `notify_all`, under the same mutex the workers re-check after
//!    waking, so a worker can never park forever while work sits in the
//!    queue — and even if every wakeup were lost, the dispatching caller
//!    drains the queue itself before blocking on the latch.
//! 2. **The latch, not queue emptiness, is the batch barrier.** A popped
//!    job may still be *running* when the queue reads empty; the caller
//!    must keep blocking until the latch reaches zero or a worker would
//!    still be executing a closure that borrows the caller's dead stack
//!    frame.
//! 3. **Every partition runs exactly once**, across every interleaving
//!    of pops, parks, notifies, and shutdown.
//!
//! This module checks those claims by exhaustive state-space search
//! rather than by timing-dependent stress: the protocol is abstracted to
//! a small state machine per thread (parking is atomic with the
//! queue re-check, exactly like `Condvar::wait` releasing the mutex) and
//! a DFS enumerates *every* reachable interleaving, counting deadlocks,
//! double-executions, and premature barrier crossings. Knobs in
//! [`ModelConfig`] deliberately re-introduce the historical bug classes
//! (notify before enqueue without helping; queue-emptiness as the
//! barrier) so the test suite can prove the explorer detects them — and
//! therefore that the shipped protocol's zero-counts are meaningful.
//!
//! Wakeups are adversarial: a parked worker wakes *only* on a notify
//! (no spurious wakeups), which is the hostile scheduling for
//! lost-wakeup bugs.

use std::collections::BTreeSet;

/// One enqueued partition: `(batch, part)`.
type Job = (u8, u8);

/// Worker automaton state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Worker {
    /// Holding no job: will pop, exit, or park at its next step.
    Checking,
    /// Parked on the condvar; runnable again only after a notify.
    Parked,
    /// Executing a popped job (the queue no longer holds it).
    Running(Job),
    /// Saw shutdown with an empty queue and returned.
    Exited,
}

/// Dispatching-caller automaton state (one batch at a time, then
/// shutdown and join — the pool's drop path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Caller {
    /// Pushing the current batch's `parts - 1` jobs under the queue lock.
    Enqueue,
    /// `notify_all` after the push (or before it, in the buggy variant).
    Notify,
    /// Running its own partition 0 inline.
    RunOwn,
    /// Queue-drain helping: pop one job if any, else fall through to the
    /// barrier.
    Help,
    /// Executing a job it popped while helping.
    HelpRunning(Job),
    /// Blocked on the batch barrier.
    Barrier,
    /// Setting the shutdown flag (last batch done).
    SetShutdown,
    /// `notify_all` so parked workers observe shutdown.
    NotifyShutdown,
    /// Joining workers; runnable once every worker exited.
    Join,
    /// Terminal.
    Done,
}

/// One global state of the abstract protocol. `Ord` so visited-set
/// membership is cheap and deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    queue: Vec<Job>,
    shutdown: bool,
    workers: Vec<Worker>,
    caller: Caller,
    /// Outstanding enqueued partitions of the current batch (the latch).
    latch: u8,
    /// Current batch index (batches dispatch sequentially).
    batch: u8,
    /// Execution count per `(batch, part)`, indexed `batch * parts + part`.
    executed: Vec<u8>,
}

/// Protocol variant under test. The default is the shipped protocol;
/// the flags re-introduce historical bug classes for negative tests.
#[derive(Debug, Clone, Copy)]
pub struct ModelConfig {
    /// Parked OS workers (the caller is worker 0 and is always modeled).
    pub workers: usize,
    /// Sequential batches to dispatch.
    pub batches: usize,
    /// Partitions per batch (the caller runs partition 0 inline).
    pub parts: usize,
    /// Shipped: the caller drains the queue before blocking. Off, the
    /// caller blocks on the barrier right after its own partition.
    pub caller_helps: bool,
    /// Bug variant: `notify_all` *before* the jobs are pushed, modeling
    /// a lost wakeup.
    pub notify_before_enqueue: bool,
    /// Bug variant: the caller treats *queue empty* as the batch
    /// barrier instead of the latch.
    pub queue_empty_barrier: bool,
}

impl ModelConfig {
    /// The shipped protocol at the given size.
    #[must_use]
    pub fn shipped(workers: usize, batches: usize, parts: usize) -> Self {
        ModelConfig {
            workers,
            batches,
            parts,
            caller_helps: true,
            notify_before_enqueue: false,
            queue_empty_barrier: false,
        }
    }
}

/// Aggregate verdict over every reachable interleaving.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Exploration {
    /// Distinct states visited.
    pub states: u64,
    /// States with no enabled transition and an unfinished caller.
    pub deadlocks: u64,
    /// Terminal states (caller done, workers exited).
    pub completions: u64,
    /// States where some partition has executed more than once.
    pub double_runs: u64,
    /// Caller crossed the batch barrier while a job of that batch was
    /// still queued or running — the use-after-free hazard.
    pub premature_crossings: u64,
    /// Terminal states where some partition never executed.
    pub lost_jobs: u64,
}

/// Enumerates every reachable interleaving of the protocol by DFS with
/// memoization, and tallies property violations. Deterministic: no
/// randomness, no timing, fixed transition order.
#[must_use]
pub fn explore(cfg: &ModelConfig) -> Exploration {
    let init = State {
        queue: Vec::new(),
        shutdown: false,
        workers: vec![Worker::Checking; cfg.workers],
        caller: Caller::Enqueue,
        latch: 0,
        batch: 0,
        executed: vec![0; cfg.batches * cfg.parts],
    };
    let mut verdict = Exploration::default();
    let mut seen: BTreeSet<State> = BTreeSet::new();
    let mut stack: Vec<State> = vec![init];
    while let Some(s) = stack.pop() {
        if !seen.insert(s.clone()) {
            continue;
        }
        verdict.states += 1;
        if s.executed.iter().any(|&n| n > 1) {
            verdict.double_runs += 1;
            continue; // already broken; successors add nothing
        }
        let succ = successors(cfg, &s, &mut verdict);
        if succ.is_empty() {
            if s.caller == Caller::Done {
                verdict.completions += 1;
                if s.executed.contains(&0) {
                    verdict.lost_jobs += 1;
                }
            } else {
                verdict.deadlocks += 1;
            }
        }
        stack.extend(succ);
    }
    verdict
}

/// All states reachable in one atomic step from `s`. Also tallies
/// premature barrier crossings as they are generated (the hazard is the
/// *transition*, not the resulting state).
fn successors(cfg: &ModelConfig, s: &State, verdict: &mut Exploration) -> Vec<State> {
    let mut out = Vec::new();
    // -- worker steps
    for (w, st) in s.workers.iter().enumerate() {
        match st {
            Worker::Checking => {
                let mut n = s.clone();
                if let Some(job) = pop_front(&mut n.queue) {
                    // Pop holds the lock; execution happens unlocked.
                    n.workers[w] = Worker::Running(job);
                } else if n.shutdown {
                    n.workers[w] = Worker::Exited;
                } else {
                    // `Condvar::wait` parks atomically with the mutex
                    // release: no step can interleave between the empty
                    // re-check and the park.
                    n.workers[w] = Worker::Parked;
                }
                out.push(n);
            }
            Worker::Running(job) => {
                let mut n = s.clone();
                mark_executed(cfg, &mut n, *job);
                n.latch = n.latch.saturating_sub(1);
                n.workers[w] = Worker::Checking;
                out.push(n);
            }
            // Parked workers move only when a notify step wakes them;
            // Exited workers never move.
            Worker::Parked | Worker::Exited => {}
        }
    }
    // -- caller steps
    match s.caller {
        Caller::Enqueue => {
            let mut n = s.clone();
            for part in 1..cfg.parts {
                n.queue.push((n.batch, part as u8));
            }
            n.latch = (cfg.parts - 1) as u8;
            n.caller = if cfg.notify_before_enqueue {
                // Buggy ordering: the notify already happened.
                Caller::RunOwn
            } else {
                Caller::Notify
            };
            out.push(n);
        }
        Caller::Notify => {
            let mut n = s.clone();
            wake_all(&mut n);
            n.caller = if cfg.notify_before_enqueue {
                Caller::Enqueue
            } else {
                Caller::RunOwn
            };
            out.push(n);
        }
        Caller::RunOwn => {
            let mut n = s.clone();
            let own = (n.batch, 0);
            mark_executed(cfg, &mut n, own);
            n.caller = if cfg.caller_helps {
                Caller::Help
            } else {
                Caller::Barrier
            };
            out.push(n);
        }
        Caller::Help => {
            let mut n = s.clone();
            if let Some(job) = pop_front(&mut n.queue) {
                n.caller = Caller::HelpRunning(job);
            } else {
                n.caller = Caller::Barrier;
            }
            out.push(n);
        }
        Caller::HelpRunning(job) => {
            let mut n = s.clone();
            mark_executed(cfg, &mut n, job);
            n.latch = n.latch.saturating_sub(1);
            n.caller = Caller::Help;
            out.push(n);
        }
        Caller::Barrier => {
            let open = if cfg.queue_empty_barrier {
                s.queue.iter().all(|&(b, _)| b != s.batch)
            } else {
                s.latch == 0
            };
            if open {
                let mut n = s.clone();
                if in_flight(&n, n.batch) {
                    // Crossing while a partition of this batch is still
                    // queued or running: its closure borrows a stack
                    // frame the caller is about to pop.
                    verdict.premature_crossings += 1;
                }
                n.batch += 1;
                n.caller = if usize::from(n.batch) < cfg.batches {
                    Caller::Enqueue
                } else {
                    Caller::SetShutdown
                };
                out.push(n);
            }
            // Latch still up (or queue non-empty): blocked; the waking
            // decrement is a worker/help step, so no self-transition.
        }
        Caller::SetShutdown => {
            let mut n = s.clone();
            n.shutdown = true;
            n.caller = Caller::NotifyShutdown;
            out.push(n);
        }
        Caller::NotifyShutdown => {
            let mut n = s.clone();
            wake_all(&mut n);
            n.caller = Caller::Join;
            out.push(n);
        }
        Caller::Join => {
            if s.workers.iter().all(|w| *w == Worker::Exited) {
                let mut n = s.clone();
                n.caller = Caller::Done;
                out.push(n);
            }
        }
        Caller::Done => {}
    }
    out
}

/// FIFO pop mirroring `VecDeque::pop_front` under the queue mutex.
fn pop_front(queue: &mut Vec<Job>) -> Option<Job> {
    if queue.is_empty() {
        None
    } else {
        Some(queue.remove(0))
    }
}

/// `notify_all`: every parked worker becomes runnable and re-checks.
fn wake_all(s: &mut State) {
    for w in &mut s.workers {
        if *w == Worker::Parked {
            *w = Worker::Checking;
        }
    }
}

/// Records one execution of `job`, saturating so broken variants with
/// double-runs stay finite.
fn mark_executed(cfg: &ModelConfig, s: &mut State, job: Job) {
    let idx = usize::from(job.0) * cfg.parts + usize::from(job.1);
    if let Some(n) = s.executed.get_mut(idx) {
        *n = n.saturating_add(1);
    }
}

/// True when a partition of `batch` is still queued or mid-execution.
fn in_flight(s: &State, batch: u8) -> bool {
    s.queue.iter().any(|&(b, _)| b == batch)
        || s.workers
            .iter()
            .any(|w| matches!(w, Worker::Running((b, _)) if *b == batch))
}
