//! Exhaustive interleaving checks of the pool dispatch protocol via the
//! abstract model in `crossbeam::model`.
//!
//! The positive tests prove the shipped protocol (enqueue-then-notify,
//! caller queue-drain helping, latch barrier) is deadlock-free,
//! exactly-once, and never crosses the batch barrier with work still in
//! flight — over *every* interleaving at several pool sizes, including
//! zero workers (the caller-only degenerate pool) and more workers than
//! jobs. The negative tests re-introduce two historical bug classes and
//! assert the explorer flags them, which is what makes the zero-counts
//! above evidence rather than vacuous.

use crossbeam::model::{explore, ModelConfig};

#[test]
fn shipped_protocol_is_deadlock_free_and_exactly_once() {
    for (workers, batches, parts) in [
        (0, 1, 1), // degenerate pool: caller runs everything inline
        (1, 2, 2),
        (2, 2, 3),
        (3, 1, 2), // more workers than enqueued jobs: extras must park and exit
        (2, 3, 2), // batch reuse: the same pool dispatches repeatedly
    ] {
        let v = explore(&ModelConfig::shipped(workers, batches, parts));
        assert!(
            v.states > 0,
            "{workers}w/{batches}b/{parts}p explored nothing"
        );
        assert_eq!(
            v.deadlocks, 0,
            "{workers}w/{batches}b/{parts}p: deadlocking interleaving found: {v:?}"
        );
        assert_eq!(
            v.double_runs, 0,
            "{workers}w/{batches}b/{parts}p: a partition ran twice: {v:?}"
        );
        assert_eq!(
            v.premature_crossings, 0,
            "{workers}w/{batches}b/{parts}p: barrier crossed with work in flight: {v:?}"
        );
        assert_eq!(
            v.lost_jobs, 0,
            "{workers}w/{batches}b/{parts}p: a completed run skipped a partition: {v:?}"
        );
        assert!(
            v.completions > 0,
            "{workers}w/{batches}b/{parts}p: no interleaving reached completion: {v:?}"
        );
    }
}

#[test]
fn helping_alone_masks_lost_wakeups() {
    // Even with the buggy notify-before-enqueue ordering, the shipped
    // queue-drain helping keeps the batch itself deadlock-free: a caller
    // that finds every worker asleep simply runs all partitions itself,
    // and the shutdown notify still wakes the parked workers. This is
    // the redundancy that makes the protocol robust, and why the
    // deadlock below only appears once helping is also removed.
    let v = explore(&ModelConfig {
        workers: 2,
        batches: 2,
        parts: 3,
        caller_helps: true,
        notify_before_enqueue: true,
        queue_empty_barrier: false,
    });
    assert_eq!(
        v.deadlocks, 0,
        "helping should absorb the lost wakeup: {v:?}"
    );
    assert_eq!(v.double_runs, 0, "{v:?}");
    assert!(v.completions > 0, "{v:?}");
}

#[test]
fn lost_wakeup_without_helping_deadlocks() {
    // The explorer must detect the classic lost-wakeup bug: notify fires
    // before the jobs are enqueued, a worker wakes, sees an empty queue,
    // and parks forever; with no queue-drain helping the caller then
    // blocks on a latch nobody will decrement. This is the negative
    // control proving the zero-deadlock results above are meaningful.
    let v = explore(&ModelConfig {
        workers: 1,
        batches: 1,
        parts: 2,
        caller_helps: false,
        notify_before_enqueue: true,
        queue_empty_barrier: false,
    });
    assert!(
        v.deadlocks > 0,
        "explorer failed to find the lost-wakeup deadlock: {v:?}"
    );
}

#[test]
fn correct_ordering_without_helping_is_still_deadlock_free() {
    // Isolate the bug to the notify ordering: with enqueue-then-notify
    // under one lock, even a non-helping caller never deadlocks, because
    // a worker either parked before the notify (and is woken) or was
    // checking and observes the now-non-empty queue.
    let v = explore(&ModelConfig {
        workers: 2,
        batches: 2,
        parts: 2,
        caller_helps: false,
        notify_before_enqueue: false,
        queue_empty_barrier: false,
    });
    assert_eq!(v.deadlocks, 0, "{v:?}");
    assert_eq!(v.double_runs, 0, "{v:?}");
    assert!(v.completions > 0, "{v:?}");
}

#[test]
fn queue_empty_barrier_crosses_with_work_in_flight() {
    // The latch exists because "queue is empty" is NOT "batch is done":
    // a worker may have popped a job it is still executing. A caller
    // using queue emptiness as the barrier returns while that closure
    // still borrows its stack frame — the use-after-free hazard the
    // latch prevents. The explorer must observe at least one such
    // premature crossing.
    let v = explore(&ModelConfig {
        workers: 2,
        batches: 1,
        parts: 3,
        caller_helps: true,
        notify_before_enqueue: false,
        queue_empty_barrier: true,
    });
    assert!(
        v.premature_crossings > 0,
        "explorer failed to catch the queue-empty barrier hazard: {v:?}"
    );
}
